/** @file Recompute-model costs vs. the executor and the paper. */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "fusion/recompute_executor.hh"
#include "model/recompute.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(Recompute, AnalyticModelMatchesExecutorExactly)
{
    // DESIGN.md invariant 7: recomputeOpsForPlan must equal what
    // RecomputeExecutor actually tallies.
    Rng rng(2024);
    for (int trial = 0; trial < 12; trial++) {
        Network net = randomFusableNet(rng);
        int last = net.numLayers() - 1;
        TilePlan plan(net, 0, last, 1, 1);
        OpCount analytic = recomputeOpsForPlan(net, plan);

        Rng wrng(trial);
        NetworkWeights w(net, wrng);
        Tensor in(net.inputShape());
        Rng irng(trial + 77);
        in.fillRandom(irng);
        RecomputeExecutor exec(net, w, TilePlan(net, 0, last, 1, 1));
        RecomputeRunStats stats;
        exec.run(in, &stats);
        EXPECT_EQ(analytic, stats.ops) << net.str();
    }
}

TEST(Recompute, AnalyticModelMatchesExecutorWithWideTips)
{
    Rng rng(11);
    Network net = randomFusableNet(rng);
    int last = net.numLayers() - 1;
    for (int tip : {1, 2, 3}) {
        TilePlan plan(net, 0, last, tip, tip);
        OpCount analytic = recomputeOpsForPlan(net, plan);
        Rng wrng(5);
        NetworkWeights w(net, wrng);
        Tensor in(net.inputShape());
        Rng irng(6);
        in.fillRandom(irng);
        RecomputeExecutor exec(net, w, TilePlan(net, 0, last, tip, tip));
        RecomputeRunStats stats;
        exec.run(in, &stats);
        EXPECT_EQ(analytic, stats.ops) << "tip " << tip;
    }
}

TEST(Recompute, ExtraOpsAreNonNegativeAndZeroForSingleLayer)
{
    Network net = tinyNet();
    EXPECT_EQ(recomputeExtraMultAdds(net, 0, 0), 0);
    EXPECT_GT(recomputeExtraMultAdds(net, 0, 1), 0);
}

TEST(Recompute, PairwiseAlexNetFuse2NearPaper678M)
{
    // Section III-C: "an extra 678 million multiplications and
    // additions" for AlexNet's first two conv layers. Our pairwise
    // model prices conv1's outputs at ceil(3/2)^2 = 4 uses under
    // pool1: 632M — within 7% of the paper.
    Network net = alexnetFusedPrefix();
    int64_t extra =
        pairwiseRecomputeExtraMultAdds(net, 0, net.numLayers() - 1);
    EXPECT_GT(extra, 550e6);
    EXPECT_LT(extra, 750e6);
}

TEST(Recompute, PairwiseVggAllLayersIsHundredsOfBillions)
{
    // Section III-C: fusing all of VGGNet-E's conv/pool stages costs
    // ~470 billion extra operations (a ~9.6x increase). Our pairwise
    // model lands at the same order with the same ~9x structure for
    // conv-fed convolutions (each point reused K^2/S^2 = 9 times).
    Network net = vggE();
    int last = net.stages().back().last;
    int64_t extra = pairwiseRecomputeExtraMultAdds(net, 0, last);
    EXPECT_GT(extra, 100e9);
    EXPECT_LT(extra, 700e9);

    int64_t base = rangeOpCount(net, 0, last).multAdds();
    double ratio = static_cast<double>(extra) / static_cast<double>(base);
    // Conv-fed convs are recomputed 8 extra times; pool-fed ones not.
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 9.5);
}

TEST(Recompute, ReuseVsRecomputeAsymmetry)
{
    // The core Section III-C conclusion: for CNNs the recompute model
    // costs billions of operations where reuse costs kilobytes.
    Network net = vggEPrefix(5);
    int last = net.numLayers() - 1;
    int64_t extra = pairwiseRecomputeExtraMultAdds(net, 0, last);
    int64_t base = rangeOpCount(net, 0, last).multAdds();
    EXPECT_GT(extra, base);  // more than doubles the arithmetic
}

TEST(Recompute, PartitionAccumulatesOverGroups)
{
    Network net = vggEPrefix(3);
    int stages = static_cast<int>(net.stages().size());
    Partition full = fullFusionPartition(stages);
    Partition singles = singletonPartition(stages);
    EXPECT_EQ(partitionPairwiseRecomputeExtraMultAdds(net, singles), 0);
    EXPECT_GT(partitionPairwiseRecomputeExtraMultAdds(net, full), 0);
}

TEST(Recompute, PoolFedConsumersAreFree)
{
    // A 2x2/s2 pool consuming a conv costs nothing to recompute
    // pairwise (ceil(2/2)^2 = 1 use).
    Network net("cp", Shape{4, 16, 16});
    net.add(LayerSpec::conv("c", 4, 3, 1));
    net.add(LayerSpec::pool("p", 2, 2));
    EXPECT_EQ(pairwiseRecomputeExtraMultAdds(net, 0, 1), 0);
}

TEST(Recompute, ConvFedConsumersPayKOverSSquared)
{
    // Two 3x3/s1 convs: layer-1 points are used 9 times; extra = 8x
    // the cost of producing each interior point.
    Network net("cc", Shape{2, 10, 10});
    net.add(LayerSpec::conv("c1", 3, 3, 1));  // out 3x8x8
    net.add(LayerSpec::conv("c2", 2, 3, 1));
    int64_t per_point = 2LL * 2 * 9;          // 2 ch x 9 taps, mult+add
    int64_t expect = 3LL * 8 * 8 * (9 - 1) * per_point;
    EXPECT_EQ(pairwiseRecomputeExtraMultAdds(net, 0, 1), expect);
}

} // namespace
} // namespace flcnn
