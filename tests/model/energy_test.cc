/** @file Energy model tests. */

#include <gtest/gtest.h>

#include "model/energy.hh"

namespace flcnn {
namespace {

TEST(Energy, ZeroEverythingIsZero)
{
    EnergyBreakdown e = estimateEnergy(0, 0, OpCount{});
    EXPECT_EQ(e.total(), 0.0);
}

TEST(Energy, DramDominatesSramPerByte)
{
    EnergyModel m;
    EnergyBreakdown dram = estimateEnergy(1000, 0, OpCount{}, m);
    EnergyBreakdown sram = estimateEnergy(0, 1000, OpCount{}, m);
    EXPECT_GT(dram.total(), 50.0 * sram.total());
}

TEST(Energy, ComputePricing)
{
    EnergyModel m;
    OpCount ops;
    ops.mults = 100;
    ops.adds = 100;
    ops.compares = 10;
    EnergyBreakdown e = estimateEnergy(0, 0, ops, m);
    EXPECT_DOUBLE_EQ(e.computePj, 100.0 * m.macPjPerOp +
                                      10.0 * m.cmpPjPerOp);
}

TEST(Energy, FusionSavesMemoryEnergyNotComputeEnergy)
{
    // The headline consequence: the fused design moves 3.64 MB instead
    // of 77 MB with identical arithmetic -> DRAM energy drops ~21x,
    // compute energy unchanged.
    OpCount ops;
    ops.mults = 5'600'000'000LL;
    ops.adds = 5'600'000'000LL;
    int64_t mb = 1024 * 1024;
    EnergyBreakdown fused = estimateEnergy(
        static_cast<int64_t>(3.64 * static_cast<double>(mb)), 50 * mb,
        ops);
    EnergyBreakdown base = estimateEnergy(
        static_cast<int64_t>(77.0 * static_cast<double>(mb)), 50 * mb,
        ops);
    EXPECT_DOUBLE_EQ(fused.computePj, base.computePj);
    EXPECT_GT(base.dramPj, 20.0 * fused.dramPj);
    EXPECT_LT(fused.total(), base.total());
}

TEST(Energy, CustomCoefficients)
{
    EnergyModel m;
    m.dramPjPerByte = 10.0;
    m.sramPjPerByte = 1.0;
    EnergyBreakdown e = estimateEnergy(100, 100, OpCount{}, m);
    EXPECT_DOUBLE_EQ(e.dramPj, 1000.0);
    EXPECT_DOUBLE_EQ(e.sramPj, 100.0);
}

TEST(Energy, MillijouleConversion)
{
    EnergyBreakdown e;
    e.dramPj = 2e9;
    EXPECT_DOUBLE_EQ(e.totalMj(), 2.0);
}

TEST(EnergyDeath, NegativeBytesPanic)
{
    EXPECT_DEATH(estimateEnergy(-1, 0, OpCount{}), "non-negative");
}

} // namespace
} // namespace flcnn
