/** @file Reuse-storage model: paper calibration and internal agreement. */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "model/storage.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(Storage, VggPointCMatchesPaper362KB)
{
    // Fusing the full five-conv prefix needs 362 KB in the paper.
    Network net = vggEPrefix(5);
    int64_t bytes = reuseStorageBytesExact(net, 0, net.numLayers() - 1);
    EXPECT_NEAR(toKiB(bytes), 362.0, 8.0);
}

TEST(Storage, VggPointBMatchesPaper118KB)
{
    // Point B fuses (conv1_1, conv1_2, pool1) and (conv2_2, pool2);
    // the storage is dominated by conv1_2's input strips.
    Network net = vggEPrefix(5);
    Partition p = partitionFromSizes({3, 1, 2, 1}, 7);
    int64_t bytes = partitionReuseStorageBytes(net, p);
    EXPECT_NEAR(toKiB(bytes), 118.0, 5.0);
}

TEST(Storage, SingleStageGroupsCostNothing)
{
    Network net = vggEPrefix(5);
    Partition p = singletonPartition(7);
    EXPECT_EQ(partitionReuseStorageBytes(net, p), 0);
}

TEST(Storage, PoolOnlyFusionIsFree)
{
    // Fusing a 2x2/s2 pool into the preceding conv adds no reuse
    // storage (K - S = 0): "it saves bandwidth at virtually no cost".
    Network net("cp", Shape{8, 32, 32});
    net.add(LayerSpec::conv("c", 8, 3, 1));
    net.add(LayerSpec::pool("p", 2, 2));
    EXPECT_EQ(groupReuseStorageBytes(net, StageGroup{0, 1}), 0);
}

TEST(Storage, OverlappingPoolFusionIsNotFree)
{
    // AlexNet's 3x3/s2 pooling has K - S = 1 and does need a strip.
    Network net("cp", Shape{8, 33, 33});
    net.add(LayerSpec::conv("c", 8, 3, 1));
    net.add(LayerSpec::pool("p", 3, 2));
    EXPECT_GT(groupReuseStorageBytes(net, StageGroup{0, 1}), 0);
}

TEST(Storage, ClosedFormAgreesWithExactOnCleanGeometry)
{
    // No padding, exactly dividing shapes: both models identical.
    Network net("clean", Shape{4, 30, 30});
    net.add(LayerSpec::conv("c1", 6, 3, 1));
    net.add(LayerSpec::conv("c2", 8, 3, 1));
    net.add(LayerSpec::pool("p", 2, 2));
    net.add(LayerSpec::conv("c3", 4, 3, 1));
    int last = net.numLayers() - 1;
    EXPECT_EQ(reuseStorageBytesExact(net, 0, last),
              reuseStorageBytesClosedForm(net, 0, last));
    EXPECT_EQ(reuseStorageBytesExact(net, 0, last, true),
              reuseStorageBytesClosedForm(net, 0, last, true));
}

TEST(Storage, ClosedFormNearExactOnVgg)
{
    Network net = vggEPrefix(5);
    int last = net.numLayers() - 1;
    double exact = static_cast<double>(reuseStorageBytesExact(net, 0, last));
    double cf = static_cast<double>(
        reuseStorageBytesClosedForm(net, 0, last));
    EXPECT_NEAR(cf / exact, 1.0, 0.05);
}

TEST(Storage, IncludingFirstInputBuffersCostsMore)
{
    Network net = vggEPrefix(5);
    int last = net.numLayers() - 1;
    EXPECT_GT(reuseStorageBytesExact(net, 0, last, true),
              reuseStorageBytesExact(net, 0, last, false));
}

TEST(Storage, DeeperFusionCostsMore)
{
    // Storage grows monotonically as the fused prefix deepens.
    Network net = vggEPrefix(5);
    const auto &stages = net.stages();
    int64_t prev = -1;
    for (size_t s = 1; s < stages.size(); s++) {
        int64_t bytes = reuseStorageBytesExact(
            net, 0, stages[s].last);
        EXPECT_GE(bytes, prev);
        prev = bytes;
    }
}

TEST(Storage, AlexNetFusedPrefixNearPaperValue)
{
    // Paper: 55.86 KB for AlexNet's first two conv layers. Our
    // implementation-accurate accounting (full-width BT row strips at
    // pool1's and conv2's inputs) gives ~75 KB; same order, documented
    // in EXPERIMENTS.md.
    Network net = alexnetFusedPrefix();
    int64_t bytes = reuseStorageBytesExact(net, 0, net.numLayers() - 1);
    EXPECT_GT(toKiB(bytes), 40.0);
    EXPECT_LT(toKiB(bytes), 100.0);
}

TEST(Storage, VggAllStagesNearPaper1_4MB)
{
    // "storing the intermediate data for reuse requires only 1.4MB"
    // (all conv+pool stages of VGGNet-E fused).
    Network net = vggE();
    int last_stage_layer = net.stages().back().last;
    int64_t bytes =
        reuseStorageBytesClosedForm(net, 0, last_stage_layer);
    double mib = toMiB(bytes);
    EXPECT_GT(mib, 1.0);
    EXPECT_LT(mib, 2.7);
}

} // namespace
} // namespace flcnn
