/** @file Pareto-front extraction. */

#include <gtest/gtest.h>

#include "model/pareto.hh"

namespace flcnn {
namespace {

DesignPoint
pt(int64_t storage, int64_t transfer)
{
    DesignPoint p;
    p.storageBytes = storage;
    p.transferBytes = transfer;
    return p;
}

TEST(Pareto, KeepsOnlyNonDominated)
{
    auto front = paretoFront({pt(0, 100), pt(10, 90), pt(20, 95),
                              pt(30, 50), pt(40, 60)});
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].storageBytes, 0);
    EXPECT_EQ(front[1].storageBytes, 10);
    EXPECT_EQ(front[2].storageBytes, 30);
}

TEST(Pareto, SortedByStorage)
{
    auto front = paretoFront({pt(50, 10), pt(0, 100), pt(25, 40)});
    for (size_t i = 1; i < front.size(); i++)
        EXPECT_LT(front[i - 1].storageBytes, front[i].storageBytes);
}

TEST(Pareto, SinglePoint)
{
    auto front = paretoFront({pt(5, 5)});
    ASSERT_EQ(front.size(), 1u);
}

TEST(Pareto, DuplicateCoordinatesKeepOne)
{
    auto front = paretoFront({pt(5, 5), pt(5, 5), pt(5, 5)});
    EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, EqualStorageKeepsBetterTransfer)
{
    auto front = paretoFront({pt(5, 9), pt(5, 4)});
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].transferBytes, 4);
}

TEST(Pareto, FrontMembersDoNotDominateEachOther)
{
    std::vector<DesignPoint> pts;
    for (int i = 0; i < 50; i++)
        pts.push_back(pt((i * 37) % 101, (i * 53) % 97));
    auto front = paretoFront(pts);
    for (size_t a = 0; a < front.size(); a++)
        for (size_t b = 0; b < front.size(); b++)
            if (a != b)
                EXPECT_FALSE(front[a].dominates(front[b]));
}

TEST(Pareto, EveryInputIsDominatedByOrOnTheFront)
{
    std::vector<DesignPoint> pts;
    for (int i = 0; i < 64; i++)
        pts.push_back(pt((i * 29) % 83, (i * 41) % 89));
    auto front = paretoFront(pts);
    for (const auto &p : pts) {
        bool covered = false;
        for (const auto &f : front) {
            if (f.dominates(p) || (f.storageBytes == p.storageBytes &&
                                   f.transferBytes == p.transferBytes)) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered);
    }
}

TEST(Pareto, DominatesSemantics)
{
    EXPECT_TRUE(pt(1, 1).dominates(pt(2, 2)));
    EXPECT_TRUE(pt(1, 2).dominates(pt(1, 3)));
    EXPECT_FALSE(pt(1, 1).dominates(pt(1, 1)));  // equal: no domination
    EXPECT_FALSE(pt(1, 3).dominates(pt(2, 2)));  // trade-off
}

} // namespace
} // namespace flcnn
