/** @file Pareto-front extraction. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "model/pareto.hh"

namespace flcnn {
namespace {

DesignPoint
pt(int64_t storage, int64_t transfer)
{
    DesignPoint p;
    p.storageBytes = storage;
    p.transferBytes = transfer;
    return p;
}

TEST(Pareto, KeepsOnlyNonDominated)
{
    auto front = paretoFront({pt(0, 100), pt(10, 90), pt(20, 95),
                              pt(30, 50), pt(40, 60)});
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].storageBytes, 0);
    EXPECT_EQ(front[1].storageBytes, 10);
    EXPECT_EQ(front[2].storageBytes, 30);
}

TEST(Pareto, SortedByStorage)
{
    auto front = paretoFront({pt(50, 10), pt(0, 100), pt(25, 40)});
    for (size_t i = 1; i < front.size(); i++)
        EXPECT_LT(front[i - 1].storageBytes, front[i].storageBytes);
}

TEST(Pareto, SinglePoint)
{
    auto front = paretoFront({pt(5, 5)});
    ASSERT_EQ(front.size(), 1u);
}

TEST(Pareto, DuplicateCoordinatesKeepOne)
{
    auto front = paretoFront({pt(5, 5), pt(5, 5), pt(5, 5)});
    EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, EqualStorageKeepsBetterTransfer)
{
    auto front = paretoFront({pt(5, 9), pt(5, 4)});
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].transferBytes, 4);
}

TEST(Pareto, FrontMembersDoNotDominateEachOther)
{
    std::vector<DesignPoint> pts;
    for (int i = 0; i < 50; i++)
        pts.push_back(pt((i * 37) % 101, (i * 53) % 97));
    auto front = paretoFront(pts);
    for (size_t a = 0; a < front.size(); a++)
        for (size_t b = 0; b < front.size(); b++)
            if (a != b)
                EXPECT_FALSE(front[a].dominates(front[b]));
}

TEST(Pareto, EveryInputIsDominatedByOrOnTheFront)
{
    std::vector<DesignPoint> pts;
    for (int i = 0; i < 64; i++)
        pts.push_back(pt((i * 29) % 83, (i * 41) % 89));
    auto front = paretoFront(pts);
    for (const auto &p : pts) {
        bool covered = false;
        for (const auto &f : front) {
            if (f.dominates(p) || (f.storageBytes == p.storageBytes &&
                                   f.transferBytes == p.transferBytes)) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered);
    }
}

TEST(Pareto, DominatesSemantics)
{
    EXPECT_TRUE(pt(1, 1).dominates(pt(2, 2)));
    EXPECT_TRUE(pt(1, 2).dominates(pt(1, 3)));
    EXPECT_FALSE(pt(1, 1).dominates(pt(1, 1)));  // equal: no domination
    EXPECT_FALSE(pt(1, 3).dominates(pt(2, 2)));  // trade-off
}

TEST(Pareto, IndicesAgreeWithByValueOverload)
{
    std::vector<DesignPoint> pts;
    for (int i = 0; i < 200; i++)
        pts.push_back(pt((i * 37) % 151, (i * 53) % 149));
    auto front = paretoFront(pts);
    auto idx = paretoFrontIndices(pts);
    ASSERT_EQ(front.size(), idx.size());
    for (size_t i = 0; i < idx.size(); i++) {
        EXPECT_EQ(pts[idx[i]].storageBytes, front[i].storageBytes) << i;
        EXPECT_EQ(pts[idx[i]].transferBytes, front[i].transferBytes) << i;
    }
}

TEST(Pareto, IndicesPickLowestIndexAmongEqualCoordinates)
{
    auto idx = paretoFrontIndices({pt(7, 7), pt(5, 5), pt(5, 5)});
    ASSERT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx[0], 1u);
}

TEST(Pareto, LargeInputPrefilterPreservesTheExactFront)
{
    // Past 1024 points paretoFrontIndices runs its bucket prefilter
    // before sorting; the front must match a brute-force dominance
    // scan exactly, including duplicate-coordinate representatives.
    std::vector<DesignPoint> pts;
    uint64_t state = 12345;
    auto next = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<int64_t>(state >> 40);
    };
    for (int i = 0; i < 5000; i++)
        pts.push_back(pt(next() % 100003, next() % 100019));
    // A dense cluster of duplicates and near-duplicates.
    for (int i = 0; i < 100; i++)
        pts.push_back(pt(50, 50 + (i % 3)));

    auto idx = paretoFrontIndices(pts);
    ASSERT_FALSE(idx.empty());

    // Brute force: a point is on the front iff nothing dominates it,
    // taking the lowest index among coordinate duplicates.
    std::vector<size_t> want;
    for (size_t i = 0; i < pts.size(); i++) {
        bool keep = true;
        for (size_t j = 0; j < pts.size() && keep; j++) {
            if (pts[j].dominates(pts[i]))
                keep = false;
            if (j < i && pts[j].storageBytes == pts[i].storageBytes &&
                pts[j].transferBytes == pts[i].transferBytes)
                keep = false;
        }
        if (keep)
            want.push_back(i);
    }
    std::sort(want.begin(), want.end(), [&](size_t a, size_t b) {
        return pts[a].storageBytes < pts[b].storageBytes;
    });
    EXPECT_EQ(idx, want);
}

} // namespace
} // namespace flcnn
