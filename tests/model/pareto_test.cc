/** @file Pareto-front extraction. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "model/pareto.hh"

namespace flcnn {
namespace {

DesignPoint
pt(int64_t storage, int64_t transfer)
{
    DesignPoint p;
    p.storageBytes = storage;
    p.transferBytes = transfer;
    return p;
}

TEST(Pareto, KeepsOnlyNonDominated)
{
    auto front = paretoFront({pt(0, 100), pt(10, 90), pt(20, 95),
                              pt(30, 50), pt(40, 60)});
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0].storageBytes, 0);
    EXPECT_EQ(front[1].storageBytes, 10);
    EXPECT_EQ(front[2].storageBytes, 30);
}

TEST(Pareto, SortedByStorage)
{
    auto front = paretoFront({pt(50, 10), pt(0, 100), pt(25, 40)});
    for (size_t i = 1; i < front.size(); i++)
        EXPECT_LT(front[i - 1].storageBytes, front[i].storageBytes);
}

TEST(Pareto, SinglePoint)
{
    auto front = paretoFront({pt(5, 5)});
    ASSERT_EQ(front.size(), 1u);
}

TEST(Pareto, DuplicateCoordinatesKeepOne)
{
    auto front = paretoFront({pt(5, 5), pt(5, 5), pt(5, 5)});
    EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, EqualStorageKeepsBetterTransfer)
{
    auto front = paretoFront({pt(5, 9), pt(5, 4)});
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].transferBytes, 4);
}

TEST(Pareto, FrontMembersDoNotDominateEachOther)
{
    std::vector<DesignPoint> pts;
    for (int i = 0; i < 50; i++)
        pts.push_back(pt((i * 37) % 101, (i * 53) % 97));
    auto front = paretoFront(pts);
    for (size_t a = 0; a < front.size(); a++)
        for (size_t b = 0; b < front.size(); b++)
            if (a != b)
                EXPECT_FALSE(front[a].dominates(front[b]));
}

TEST(Pareto, EveryInputIsDominatedByOrOnTheFront)
{
    std::vector<DesignPoint> pts;
    for (int i = 0; i < 64; i++)
        pts.push_back(pt((i * 29) % 83, (i * 41) % 89));
    auto front = paretoFront(pts);
    for (const auto &p : pts) {
        bool covered = false;
        for (const auto &f : front) {
            if (f.dominates(p) || (f.storageBytes == p.storageBytes &&
                                   f.transferBytes == p.transferBytes)) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered);
    }
}

TEST(Pareto, DominatesSemantics)
{
    EXPECT_TRUE(pt(1, 1).dominates(pt(2, 2)));
    EXPECT_TRUE(pt(1, 2).dominates(pt(1, 3)));
    EXPECT_FALSE(pt(1, 1).dominates(pt(1, 1)));  // equal: no domination
    EXPECT_FALSE(pt(1, 3).dominates(pt(2, 2)));  // trade-off
}

TEST(Pareto, IndicesAgreeWithByValueOverload)
{
    std::vector<DesignPoint> pts;
    for (int i = 0; i < 200; i++)
        pts.push_back(pt((i * 37) % 151, (i * 53) % 149));
    auto front = paretoFront(pts);
    auto idx = paretoFrontIndices(pts);
    ASSERT_EQ(front.size(), idx.size());
    for (size_t i = 0; i < idx.size(); i++) {
        EXPECT_EQ(pts[idx[i]].storageBytes, front[i].storageBytes) << i;
        EXPECT_EQ(pts[idx[i]].transferBytes, front[i].transferBytes) << i;
    }
}

TEST(Pareto, IndicesPickLowestIndexAmongEqualCoordinates)
{
    auto idx = paretoFrontIndices({pt(7, 7), pt(5, 5), pt(5, 5)});
    ASSERT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx[0], 1u);
}

TEST(Pareto, LargeInputPrefilterPreservesTheExactFront)
{
    // Past 1024 points paretoFrontIndices runs its bucket prefilter
    // before sorting; the front must match a brute-force dominance
    // scan exactly, including duplicate-coordinate representatives.
    std::vector<DesignPoint> pts;
    uint64_t state = 12345;
    auto next = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<int64_t>(state >> 40);
    };
    for (int i = 0; i < 5000; i++)
        pts.push_back(pt(next() % 100003, next() % 100019));
    // A dense cluster of duplicates and near-duplicates.
    for (int i = 0; i < 100; i++)
        pts.push_back(pt(50, 50 + (i % 3)));

    auto idx = paretoFrontIndices(pts);
    ASSERT_FALSE(idx.empty());

    // Brute force: a point is on the front iff nothing dominates it,
    // taking the lowest index among coordinate duplicates.
    std::vector<size_t> want;
    for (size_t i = 0; i < pts.size(); i++) {
        bool keep = true;
        for (size_t j = 0; j < pts.size() && keep; j++) {
            if (pts[j].dominates(pts[i]))
                keep = false;
            if (j < i && pts[j].storageBytes == pts[i].storageBytes &&
                pts[j].transferBytes == pts[i].transferBytes)
                keep = false;
        }
        if (keep)
            want.push_back(i);
    }
    std::sort(want.begin(), want.end(), [&](size_t a, size_t b) {
        return pts[a].storageBytes < pts[b].storageBytes;
    });
    EXPECT_EQ(idx, want);
}

TEST(Pareto, PrefilterTieAcrossBucketsIsGenuineDominance)
{
    // Crafted ties: one minimum-storage point, then >1024 points in
    // strictly higher storage buckets all *tying* its transfer. The
    // bucket prefilter drops a key when its transfer merely equals the
    // prefix minimum of strictly lower buckets — legitimate here,
    // because strictly lower bucket means strictly lower storage, so
    // the equal-transfer drop is genuine dominance, never a tie-break
    // against an equal point. The front must be exactly the one
    // cheapest point.
    std::vector<DesignPoint> pts;
    pts.push_back(pt(0, 100));
    for (int i = 1; i <= 2000; i++)
        pts.push_back(pt(int64_t{i} * 1000, 100));
    auto idx = paretoFrontIndices(pts);
    ASSERT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx[0], 0u);
}

TEST(Pareto, PrefilterTieInsideOneBucketKeepsTheCheaperPoint)
{
    // Equal transfer *inside* a bucket must not self-eliminate: the
    // prefix minimum excludes the key's own bucket, so the bucket's
    // best-storage representative survives to the exact sorted scan.
    std::vector<DesignPoint> pts;
    for (int i = 0; i < 1500; i++)
        pts.push_back(pt(i, 100));  // one bucket span, all tying
    pts.push_back(pt(3, 7));
    auto idx = paretoFrontIndices(pts);
    // (0, 100) and (3, 7) are the non-dominated set.
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 1500u);
}

ParetoPoint3
pt3(int64_t x, int64_t y, int64_t z)
{
    return ParetoPoint3{x, y, z};
}

TEST(Pareto3, Semantics)
{
    EXPECT_TRUE(pt3(1, 1, 1).weaklyDominates(pt3(2, 2, 2)));
    EXPECT_TRUE(pt3(1, 1, 1).weaklyDominates(pt3(1, 1, 1)));
    EXPECT_FALSE(pt3(1, 1, 3).weaklyDominates(pt3(2, 2, 2)));
}

TEST(Pareto3, KeepsTradeOffsAndDropsDominated)
{
    auto idx = paretoFrontIndices3({pt3(0, 0, 9), pt3(0, 9, 0),
                                    pt3(9, 0, 0), pt3(5, 5, 5),
                                    pt3(9, 9, 9)});
    // (9,9,9) is dominated by everything; (5,5,5) by nothing.
    ASSERT_EQ(idx.size(), 4u);
    EXPECT_EQ(std::count(idx.begin(), idx.end(), size_t{4}), 0);
    EXPECT_EQ(std::count(idx.begin(), idx.end(), size_t{3}), 1);
}

TEST(Pareto3, DuplicatesKeepLowestIndex)
{
    auto idx = paretoFrontIndices3({pt3(7, 7, 7), pt3(5, 5, 5),
                                    pt3(5, 5, 5)});
    ASSERT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx[0], 1u);
}

TEST(Pareto3, SortedByAscendingAxes)
{
    auto idx = paretoFrontIndices3({pt3(9, 0, 0), pt3(0, 9, 5),
                                    pt3(0, 5, 9), pt3(5, 5, 5)});
    std::vector<ParetoPoint3> pts = {pt3(9, 0, 0), pt3(0, 9, 5),
                                     pt3(0, 5, 9), pt3(5, 5, 5)};
    for (size_t i = 1; i < idx.size(); i++) {
        const ParetoPoint3 &a = pts[idx[i - 1]];
        const ParetoPoint3 &b = pts[idx[i]];
        EXPECT_TRUE(a.x < b.x || (a.x == b.x && a.y <= b.y));
    }
}

TEST(Pareto3, PhantomPointTieHazardInThePrefilter)
{
    // The >= 3-objective tie hazard: a low-x bucket holding (0, 0, 10)
    // and (0, 10, 0). Per-axis prefix minima would form the phantom
    // (0, 0, 0) and wrongly drop the genuine trade-off (5000, 1, 1)
    // from a higher bucket — neither real point dominates it. Pad past
    // the prefilter threshold with far-dominated filler and check the
    // trade-off survives.
    std::vector<ParetoPoint3> pts;
    pts.push_back(pt3(0, 0, 10));
    pts.push_back(pt3(0, 10, 0));
    pts.push_back(pt3(5000, 1, 1));
    for (int i = 0; i < 1200; i++)
        pts.push_back(pt3(6000 + i, 1000 + i, 1000 + i));
    auto idx = paretoFrontIndices3(pts);
    EXPECT_EQ(std::count(idx.begin(), idx.end(), size_t{2}), 1)
        << "tie-correct prefilter must keep the (y, z) trade-off";
    EXPECT_EQ(std::count(idx.begin(), idx.end(), size_t{0}), 1);
    EXPECT_EQ(std::count(idx.begin(), idx.end(), size_t{1}), 1);
}

TEST(Pareto3, LargeInputPrefilterMatchesBruteForce)
{
    std::vector<ParetoPoint3> pts;
    uint64_t state = 99991;
    auto next = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<int64_t>(state >> 40);
    };
    for (int i = 0; i < 4000; i++)
        pts.push_back(pt3(next() % 997, next() % 1009, next() % 1013));
    // Tie-heavy band: many points sharing axes pairwise.
    for (int i = 0; i < 200; i++)
        pts.push_back(pt3(i % 7, (i * 3) % 7, (i * 5) % 7));

    auto idx = paretoFrontIndices3(pts);
    ASSERT_FALSE(idx.empty());

    auto equal3 = [](const ParetoPoint3 &a, const ParetoPoint3 &b) {
        return a.x == b.x && a.y == b.y && a.z == b.z;
    };
    std::vector<size_t> want;
    for (size_t i = 0; i < pts.size(); i++) {
        bool keep = true;
        for (size_t j = 0; j < pts.size() && keep; j++) {
            if (j != i && pts[j].weaklyDominates(pts[i]) &&
                !equal3(pts[j], pts[i]))
                keep = false;
            if (j < i && equal3(pts[j], pts[i]))
                keep = false;
        }
        if (keep)
            want.push_back(i);
    }
    std::sort(want.begin(), want.end(), [&](size_t a, size_t b) {
        const ParetoPoint3 &p = pts[a], &q = pts[b];
        if (p.x != q.x)
            return p.x < q.x;
        if (p.y != q.y)
            return p.y < q.y;
        if (p.z != q.z)
            return p.z < q.z;
        return a < b;
    });
    EXPECT_EQ(idx, want);
}

TEST(Pareto3, EveryInputWeaklyDominatedBySomeFrontPoint)
{
    // The frontier-comparison tooling (the sweep's dominates-or-matches
    // CI gate) relies on this exact property.
    std::vector<ParetoPoint3> pts;
    for (int i = 0; i < 300; i++)
        pts.push_back(pt3((i * 37) % 101, (i * 53) % 97, (i * 71) % 89));
    auto idx = paretoFrontIndices3(pts);
    for (const ParetoPoint3 &p : pts) {
        bool covered = false;
        for (size_t f : idx) {
            if (pts[f].weaklyDominates(p)) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered);
    }
}

} // namespace
} // namespace flcnn
