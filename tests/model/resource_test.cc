/** @file FPGA resource model. */

#include <gtest/gtest.h>

#include "model/balance.hh"
#include "model/resource.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(Resource, DspFormulaMatchesPaper)
{
    // "Tm * Tn * (DSPadd + DSPmul)" with DSPadd = 2 and DSPmul = 3.
    EXPECT_EQ(dspPerMac, 5);
    EXPECT_EQ(dspForUnroll(64, 9), 2880);   // Table II baseline
    EXPECT_EQ(dspForUnroll(64, 7), 2240);   // Table I baseline
}

TEST(Resource, BramCounting)
{
    // One 18Kb BRAM holds 2304 bytes.
    EXPECT_EQ(bramsFor(1, 1, false), 1);
    EXPECT_EQ(bramsFor(2304, 1, false), 1);
    EXPECT_EQ(bramsFor(2305, 1, false), 2);
    EXPECT_EQ(bramsFor(2304, 1, true), 2);    // double buffered
    EXPECT_EQ(bramsFor(4608, 4, false), 4);   // banking rounds up
    EXPECT_EQ(bramsFor(0, 4, false), 0);
}

TEST(Resource, BaselineBramScalesWithUnroll)
{
    Network net = vggEPrefix(5);
    BaselineConfig small{16, 4, 16, 16};
    BaselineConfig large{64, 9, 16, 16};
    EXPECT_LT(baselineResources(net, small).bram,
              baselineResources(net, large).bram);
    EXPECT_LT(baselineResources(net, small).dsp,
              baselineResources(net, large).dsp);
}

TEST(Resource, BaselineIncludesPoolingBrams)
{
    // The paper charges the baseline 22 BRAMs for on-chip pooling.
    Network net("t", Shape{3, 16, 16});
    net.add(LayerSpec::conv("c", 4, 3, 1));
    BaselineConfig cfg{1, 1, 0, 0};
    EXPECT_GE(baselineResources(net, cfg).bram, poolingBrams);
}

TEST(Resource, FusedNeedsMoreBramThanBaseline)
{
    // Table II: fused 2509 vs baseline 2085 BRAMs (+20%); the ordering
    // must hold in our model at comparable DSP budgets.
    Network net = vggEPrefix(5);
    BaselineConfig bcfg{64, 9, 16, 16};
    auto fcfg = balanceFusedPipeline(net, 0, net.numLayers() - 1, 2987);
    ResourceUsage base = baselineResources(net, bcfg);
    ResourceUsage fused =
        fusedResources(net, 0, net.numLayers() - 1, fcfg.unrolls);
    EXPECT_GT(fused.bram, base.bram);
    EXPECT_GT(fused.bufferBytes, base.bufferBytes);
}

TEST(Resource, FusedDspSumsPerLayerUnrolls)
{
    Network net = vggEPrefix(2);
    std::vector<LayerUnroll> unrolls;
    for (int i : net.convLayers())
        unrolls.push_back(LayerUnroll{i, 4, 3});
    ResourceUsage use =
        fusedResources(net, 0, net.numLayers() - 1, unrolls);
    EXPECT_EQ(use.dsp, 2 * 4 * 3 * 5);
}

TEST(Resource, FusedBuffersIncludeReuseAndWeights)
{
    Network net = vggEPrefix(2);
    std::vector<LayerUnroll> unrolls;
    for (int i : net.convLayers())
        unrolls.push_back(LayerUnroll{i, 1, 1});
    ResourceUsage use =
        fusedResources(net, 0, net.numLayers() - 1, unrolls);
    int64_t weights =
        net.weightBytesInRange(0, net.numLayers() - 1);
    EXPECT_GT(use.bufferBytes, weights);
}

} // namespace
} // namespace flcnn
