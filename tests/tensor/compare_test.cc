/** @file Tensor comparison utilities. */

#include <gtest/gtest.h>

#include "tensor/compare.hh"

namespace flcnn {
namespace {

TEST(Compare, IdenticalTensorsMatchExactly)
{
    Tensor a(2, 3, 3), b(2, 3, 3);
    a.fillIota();
    b.fillIota();
    CompareResult r = compareTensors(a, b);
    EXPECT_TRUE(r.match);
    EXPECT_EQ(r.mismatches, 0);
    EXPECT_EQ(r.maxAbsDiff, 0.0);
}

TEST(Compare, ShapeMismatchNeverMatches)
{
    Tensor a(1, 2, 2), b(1, 2, 3);
    EXPECT_FALSE(compareTensors(a, b).match);
}

TEST(Compare, SingleMismatchLocated)
{
    Tensor a(2, 3, 3), b(2, 3, 3);
    b(1, 2, 0) = 1e-3f;
    CompareResult r = compareTensors(a, b);
    EXPECT_FALSE(r.match);
    EXPECT_EQ(r.mismatches, 1);
    EXPECT_EQ(r.firstC, 1);
    EXPECT_EQ(r.firstY, 2);
    EXPECT_EQ(r.firstX, 0);
    EXPECT_FLOAT_EQ(static_cast<float>(r.maxAbsDiff), 1e-3f);
}

TEST(Compare, RelativeToleranceAccepts)
{
    Tensor a(1, 1, 2), b(1, 1, 2);
    a(0, 0, 0) = 1000.0f;
    b(0, 0, 0) = 1000.001f;
    a(0, 0, 1) = -5.0f;
    b(0, 0, 1) = -5.0f;
    EXPECT_FALSE(tensorsEqual(a, b));
    EXPECT_TRUE(tensorsClose(a, b, 1e-5, 0.0));
    EXPECT_FALSE(tensorsClose(a, b, 1e-9, 0.0));
}

TEST(Compare, AbsoluteFloorAccepts)
{
    Tensor a(1, 1, 1), b(1, 1, 1);
    a(0, 0, 0) = 0.0f;
    b(0, 0, 0) = 1e-9f;
    EXPECT_TRUE(tensorsClose(a, b, 0.0, 1e-8));
    EXPECT_FALSE(tensorsClose(a, b, 0.0, 1e-10));
}

TEST(Compare, ZeroTensorsMatch)
{
    Tensor a(3, 4, 4), b(3, 4, 4);
    EXPECT_TRUE(tensorsEqual(a, b));
}

TEST(Compare, SummaryStringMentionsLocation)
{
    Tensor a(1, 2, 2), b(1, 2, 2);
    b(0, 1, 1) = 2.0f;
    CompareResult r = compareTensors(a, b);
    EXPECT_NE(r.str().find("(0,1,1)"), std::string::npos);
}

} // namespace
} // namespace flcnn
