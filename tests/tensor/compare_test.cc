/** @file Tensor comparison utilities. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "tensor/compare.hh"

namespace flcnn {
namespace {

TEST(Compare, IdenticalTensorsMatchExactly)
{
    Tensor a(2, 3, 3), b(2, 3, 3);
    a.fillIota();
    b.fillIota();
    CompareResult r = compareTensors(a, b);
    EXPECT_TRUE(r.match);
    EXPECT_EQ(r.mismatches, 0);
    EXPECT_EQ(r.maxAbsDiff, 0.0);
}

TEST(Compare, ShapeMismatchNeverMatches)
{
    Tensor a(1, 2, 2), b(1, 2, 3);
    EXPECT_FALSE(compareTensors(a, b).match);
}

TEST(Compare, SingleMismatchLocated)
{
    Tensor a(2, 3, 3), b(2, 3, 3);
    b(1, 2, 0) = 1e-3f;
    CompareResult r = compareTensors(a, b);
    EXPECT_FALSE(r.match);
    EXPECT_EQ(r.mismatches, 1);
    EXPECT_EQ(r.firstC, 1);
    EXPECT_EQ(r.firstY, 2);
    EXPECT_EQ(r.firstX, 0);
    EXPECT_FLOAT_EQ(static_cast<float>(r.maxAbsDiff), 1e-3f);
}

TEST(Compare, RelativeToleranceAccepts)
{
    Tensor a(1, 1, 2), b(1, 1, 2);
    a(0, 0, 0) = 1000.0f;
    b(0, 0, 0) = 1000.001f;
    a(0, 0, 1) = -5.0f;
    b(0, 0, 1) = -5.0f;
    EXPECT_FALSE(tensorsEqual(a, b));
    EXPECT_TRUE(tensorsClose(a, b, 1e-5, 0.0));
    EXPECT_FALSE(tensorsClose(a, b, 1e-9, 0.0));
}

TEST(Compare, AbsoluteFloorAccepts)
{
    Tensor a(1, 1, 1), b(1, 1, 1);
    a(0, 0, 0) = 0.0f;
    b(0, 0, 0) = 1e-9f;
    EXPECT_TRUE(tensorsClose(a, b, 0.0, 1e-8));
    EXPECT_FALSE(tensorsClose(a, b, 0.0, 1e-10));
}

TEST(Compare, ZeroTensorsMatch)
{
    Tensor a(3, 4, 4), b(3, 4, 4);
    EXPECT_TRUE(tensorsEqual(a, b));
}

TEST(Compare, SummaryStringMentionsLocation)
{
    Tensor a(1, 2, 2), b(1, 2, 2);
    b(0, 1, 1) = 2.0f;
    CompareResult r = compareTensors(a, b);
    EXPECT_NE(r.str().find("(0,1,1)"), std::string::npos);
}

TEST(Ulp, AdjacentFloatsAreOneApart)
{
    EXPECT_EQ(ulpDistance(1.0f, 1.0f), 0);
    EXPECT_EQ(ulpDistance(1.0f, std::nextafter(1.0f, 2.0f)), 1);
    EXPECT_EQ(ulpDistance(std::nextafter(1.0f, 2.0f), 1.0f), 1);
    EXPECT_EQ(ulpDistance(-1.0f, std::nextafter(-1.0f, -2.0f)), 1);
    // Two steps spanning an exponent boundary still count as two.
    const float below = std::nextafter(2.0f, 1.0f);
    EXPECT_EQ(ulpDistance(below, std::nextafter(2.0f, 3.0f)), 2);
}

TEST(Ulp, SignedZerosCoincideAndSignsMeasureThroughZero)
{
    EXPECT_EQ(ulpDistance(0.0f, -0.0f), 0);
    // Opposite-sign values are |a - 0| + |0 - b| steps apart: the
    // distance from the smallest positive to the smallest negative
    // denormal is exactly 2.
    const float tiny = std::nextafter(0.0f, 1.0f);
    EXPECT_EQ(ulpDistance(tiny, -tiny), 2);
    EXPECT_EQ(ulpDistance(tiny, 0.0f), 1);
}

TEST(Ulp, NaNIsInfinitelyFar)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(ulpDistance(nan, 1.0f), INT64_MAX);
    EXPECT_EQ(ulpDistance(1.0f, nan), INT64_MAX);
    EXPECT_EQ(ulpDistance(nan, nan), INT64_MAX);
}

TEST(Ulp, MaxUlpDistanceScansTheWholeTensor)
{
    Tensor a(2, 2, 2), b(2, 2, 2);
    a.fillIota();
    b.fillIota();
    EXPECT_EQ(maxUlpDistance(a, b), 0);
    b(1, 0, 1) = std::nextafter(b(1, 0, 1), 1e9f);
    b(1, 1, 1) = std::nextafter(
        std::nextafter(b(1, 1, 1), 1e9f), 1e9f);
    EXPECT_EQ(maxUlpDistance(a, b), 2);
    EXPECT_EQ(maxUlpDistance(a, Tensor(1, 2, 2)), INT64_MAX);
}

} // namespace
} // namespace flcnn
