/** @file Tensor and FilterBank storage tests. */

#include <gtest/gtest.h>

#include "tensor/tensor.hh"

namespace flcnn {
namespace {

TEST(Shape, ElemsAndBytes)
{
    Shape s{3, 224, 224};
    EXPECT_EQ(s.elems(), 3 * 224 * 224);
    EXPECT_EQ(s.bytes(), 3 * 224 * 224 * 4);
    EXPECT_EQ(s.str(), "3x224x224");
    EXPECT_TRUE(s.valid());
    EXPECT_FALSE((Shape{0, 1, 1}).valid());
}

TEST(Shape, Equality)
{
    EXPECT_TRUE((Shape{1, 2, 3}) == (Shape{1, 2, 3}));
    EXPECT_FALSE((Shape{1, 2, 3}) == (Shape{1, 3, 2}));
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(2, 3, 4);
    for (int c = 0; c < 2; c++)
        for (int y = 0; y < 3; y++)
            for (int x = 0; x < 4; x++)
                EXPECT_EQ(t(c, y, x), 0.0f);
}

TEST(Tensor, IndexingIsRowMajorCHW)
{
    Tensor t(2, 3, 4);
    t(1, 2, 3) = 5.0f;
    EXPECT_EQ(t.data()[1 * 3 * 4 + 2 * 4 + 3], 5.0f);
    EXPECT_EQ(t.idx(1, 2, 3), 1 * 12 + 2 * 4 + 3);
}

TEST(Tensor, AtOrZeroPads)
{
    Tensor t(1, 2, 2);
    t(0, 0, 0) = 1.0f;
    EXPECT_EQ(t.atOrZero(0, 0, 0), 1.0f);
    EXPECT_EQ(t.atOrZero(0, -1, 0), 0.0f);
    EXPECT_EQ(t.atOrZero(0, 0, 2), 0.0f);
    EXPECT_EQ(t.atOrZero(1, 0, 0), 0.0f);
}

TEST(TensorDeath, BoundsCheckedAtPanics)
{
    Tensor t(1, 2, 2);
    EXPECT_DEATH(t.at(0, 2, 0), "out of bounds");
    EXPECT_DEATH(t.at(-1, 0, 0), "out of bounds");
}

TEST(TensorDeath, InvalidShapePanics)
{
    EXPECT_DEATH(Tensor(0, 1, 1), "positive");
}

TEST(Tensor, FillRandomIsSeeded)
{
    Rng r1(5), r2(5);
    Tensor a(2, 4, 4), b(2, 4, 4);
    a.fillRandom(r1);
    b.fillRandom(r2);
    for (int64_t i = 0; i < a.elems(); i++)
        EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(Tensor, FillIotaIsIndexDependent)
{
    Tensor t(1, 4, 4);
    t.fillIota();
    EXPECT_NE(t(0, 0, 0), t(0, 0, 1));
    EXPECT_NE(t(0, 1, 0), t(0, 2, 0));
}

TEST(Tensor, FillConstant)
{
    Tensor t(2, 2, 2);
    t.fill(7.5f);
    for (int64_t i = 0; i < t.elems(); i++)
        EXPECT_EQ(t.data()[i], 7.5f);
}

TEST(FilterBank, DimsAndBytes)
{
    FilterBank fb(8, 3, 5);
    EXPECT_EQ(fb.numFilters(), 8);
    EXPECT_EQ(fb.numChannels(), 3);
    EXPECT_EQ(fb.kernel(), 5);
    EXPECT_EQ(fb.weightElems(), 8 * 3 * 5 * 5);
    EXPECT_EQ(fb.bytes(), (8 * 3 * 25 + 8) * 4);
}

TEST(FilterBank, WeightAndBiasStorage)
{
    FilterBank fb(2, 2, 3);
    fb.w(1, 1, 2, 2) = 9.0f;
    fb.bias(1) = -1.0f;
    EXPECT_EQ(fb.w(1, 1, 2, 2), 9.0f);
    EXPECT_EQ(fb.w(0, 0, 0, 0), 0.0f);
    EXPECT_EQ(fb.bias(1), -1.0f);
    EXPECT_EQ(fb.bias(0), 0.0f);
}

TEST(FilterBank, FillRandomIsSeeded)
{
    Rng r1(5), r2(5);
    FilterBank a(2, 2, 3), b(2, 2, 3);
    a.fillRandom(r1);
    b.fillRandom(r2);
    EXPECT_EQ(a.w(1, 1, 1, 1), b.w(1, 1, 1, 1));
    EXPECT_EQ(a.bias(0), b.bias(0));
}

} // namespace
} // namespace flcnn
