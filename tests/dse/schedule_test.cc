/** @file Schedule IR: validation, canonicalization, hashing, chain lift. */

#include <gtest/gtest.h>

#include "dse/schedule.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace dse {
namespace {

TEST(Schedule, ChainLiftRoundTrips)
{
    Network net = vggEPrefix(5);
    const int stages = static_cast<int>(net.stages().size());
    Partition p = partitionFromSizes({3, 2, 2}, stages);
    Schedule s = chainSchedule(p);
    EXPECT_EQ(validateSchedule(net, s), "");
    EXPECT_TRUE(isChainRestricted(net, s));
    EXPECT_EQ(schedulePartition(s), p);
}

TEST(Schedule, ValidateRejectsBadTileHeights)
{
    Network net = vggEPrefix(2);
    const int stages = static_cast<int>(net.stages().size());
    Schedule s = chainSchedule(partitionFromSizes({stages}, stages));
    s.groups[0].tileH = 0;
    EXPECT_NE(validateSchedule(net, s), "");
    s.groups[0].tileH = kMaxTileH + 1;
    EXPECT_NE(validateSchedule(net, s), "");
    s.groups[0].tileH = kMaxTileH;
    EXPECT_EQ(validateSchedule(net, s), "");
}

TEST(Schedule, ValidateRejectsNonPartitionGroups)
{
    Network net = vggEPrefix(5);
    // A gap in the stage cover.
    Schedule s;
    s.groups.push_back(GroupSchedule{0, 1});
    s.groups.push_back(GroupSchedule{3, 4});
    EXPECT_NE(validateSchedule(net, s), "");
}

TEST(Schedule, UniformStrideNeedsOneStride)
{
    // AlexNet fuses conv1 (stride 4) with pool1 (stride 2): mixed.
    Network net = alexnet();
    const int stages = static_cast<int>(net.stages().size());
    Schedule s = chainSchedule(partitionFromSizes({2, stages - 2},
                                                  stages));
    s.groups[0].flow = Dataflow::UniformStride;
    EXPECT_NE(validateSchedule(net, s), "");

    // VGG's stride-1 conv stacks qualify.
    Network vgg = vggEPrefix(3);
    const int vstages = static_cast<int>(vgg.stages().size());
    Schedule v = chainSchedule(partitionFromSizes({2, vstages - 2},
                                                  vstages));
    v.groups[0].flow = Dataflow::UniformStride;
    EXPECT_EQ(validateSchedule(vgg, v), "");
}

TEST(Schedule, MeaningfulBitsSkipTheGroupInput)
{
    // Two fused 3x3 stride-1 convs: two windowed layers, and only the
    // second's halo is retainable/recomputable — the first's halo is
    // the group input.
    Network net = vggEPrefix(2);
    GroupSchedule g{0, 1, 1, Dataflow::Pyramid, ~0u};
    const uint32_t bits = meaningfulRetainBits(net, g);
    EXPECT_EQ(bits & 1u, 0u);
    EXPECT_NE(bits & 2u, 0u);
}

TEST(Schedule, CanonicalFormForcesMootBits)
{
    Network net = vggEPrefix(2);
    const int stages = static_cast<int>(net.stages().size());
    Schedule all = chainSchedule(partitionFromSizes({stages}, stages));
    Schedule cleared = all;
    cleared.groups[0].retainMask &= ~1u;  // moot: the group-input halo
    EXPECT_EQ(canonicalSchedule(net, cleared),
              canonicalSchedule(net, all));
    EXPECT_EQ(scheduleHash(net, cleared), scheduleHash(net, all));

    // Clearing a *meaningful* bit is a different design.
    Schedule rec = all;
    rec.groups[0].retainMask &= ~2u;
    EXPECT_NE(scheduleHash(net, rec), scheduleHash(net, all));
}

TEST(Schedule, CanonicalFormPinsSingletonsAndNonPyramidMasks)
{
    Network net = vggEPrefix(5);
    const int stages = static_cast<int>(net.stages().size());
    Schedule s = chainSchedule(partitionFromSizes({stages - 1, 1},
                                                  stages));
    s.groups[0].flow = Dataflow::Independent;
    s.groups[0].retainMask = 0x5;  // meaningless under Independent
    s.groups[1].flow = Dataflow::UniformStride;  // singleton: moot
    Schedule c = canonicalSchedule(net, s);
    EXPECT_EQ(c.groups[0].retainMask, ~0u);
    EXPECT_EQ(c.groups[1].flow, Dataflow::Pyramid);
}

TEST(Schedule, HashSeparatesTileHeights)
{
    Network net = vggEPrefix(3);
    const int stages = static_cast<int>(net.stages().size());
    Schedule a = chainSchedule(partitionFromSizes({stages}, stages));
    Schedule b = a;
    b.groups[0].tileH = 4;
    EXPECT_NE(scheduleHash(net, a), scheduleHash(net, b));
}

TEST(Schedule, StrRendersExtendedNotation)
{
    Network net = vggEPrefix(5);
    const int stages = static_cast<int>(net.stages().size());
    Schedule s = chainSchedule(partitionFromSizes({3, 2, 2}, stages));
    EXPECT_EQ(scheduleStr(net, s), "(3, 2, 2)");
    s.groups[0].tileH = 4;
    s.groups[1].flow = Dataflow::UniformStride;
    EXPECT_EQ(scheduleStr(net, s), "(3:t4, 2:us, 2)");
}

} // namespace
} // namespace dse
} // namespace flcnn
