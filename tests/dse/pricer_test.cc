/**
 * @file
 * Schedule pricer: chain-anchor consistency with the legacy cost
 * table, tile/dataflow pricing behavior, and exact incremental
 * re-pricing.
 */

#include <gtest/gtest.h>

#include "dse/pricer.hh"
#include "dse/sweep.hh"
#include "model/recompute.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace dse {
namespace {

/** Chain-restricted groups must price bit-identically to the legacy
 *  GroupCostCache cell on the shared axes — for every stage range. */
void
expectChainAnchor(const Network &net, const GroupCostOptions &opt)
{
    SchedulePricer pricer(net, opt);
    const GroupCostCache &cache = pricer.chainCache();
    const int stages = static_cast<int>(net.stages().size());
    for (int a = 0; a < stages; a++) {
        for (int b = a; b < stages; b++) {
            const GroupCostCache::Cell &cell = cache.cell(a, b);
            // All-retain: the paper's model. No recompute is incurred.
            ScheduleCost keep = pricer.priceGroup(
                GroupSchedule{a, b, 1, Dataflow::Pyramid, ~0u});
            EXPECT_EQ(keep.storageBytes, cell.storage)
                << net.name() << " [" << a << "," << b << "]";
            EXPECT_EQ(keep.transferBytes, cell.transfer)
                << net.name() << " [" << a << "," << b << "]";
            EXPECT_EQ(keep.extraOps, 0);
            EXPECT_TRUE(keep.exact());
            // All-recompute at 1-row tiles: the pairwise model's total.
            if (opt.withRecompute) {
                ScheduleCost rec = pricer.priceGroup(
                    GroupSchedule{a, b, 1, Dataflow::Pyramid, 0u});
                EXPECT_EQ(rec.extraOps, cell.extra)
                    << net.name() << " [" << a << "," << b << "]";
            }
        }
    }
}

TEST(SchedulePricer, ChainAnchorMatchesLegacyCells)
{
    expectChainAnchor(vggEPrefix(5), GroupCostOptions{});
    expectChainAnchor(alexnet(), GroupCostOptions{});
}

TEST(SchedulePricer, ChainAnchorWithRecompute)
{
    GroupCostOptions opt;
    opt.withRecompute = true;
    expectChainAnchor(vggEPrefix(5), opt);
    expectChainAnchor(alexnet(), opt);
}

TEST(SchedulePricer, ChainAnchorInt8)
{
    GroupCostOptions opt;
    opt.withRecompute = true;
    opt.dtype = Precision::Int8;
    expectChainAnchor(vggEPrefix(5), opt);
}

TEST(SchedulePricer, ChainAnchorWithWeightStorage)
{
    GroupCostOptions opt;
    opt.includeWeightStorage = true;
    expectChainAnchor(vggEPrefix(5), opt);
}

TEST(SchedulePricer, TallerTilesGrowStorageAndAmortizeRecompute)
{
    Network net = vggEPrefix(3);
    SchedulePricer pricer(net);
    const int stages = static_cast<int>(net.stages().size());
    for (int pass = 0; pass < 2; pass++) {
        int64_t prev_storage = -1;
        int64_t prev_extra = -1;
        for (int t : {1, 2, 4, 8}) {
            const uint32_t mask = pass == 0 ? ~0u : 0u;
            ScheduleCost c = pricer.priceGroup(
                GroupSchedule{0, stages - 1, t, Dataflow::Pyramid, mask});
            // Transfer is tile-invariant: input in, output out, once.
            EXPECT_EQ(c.transferBytes,
                      pricer.priceGroup(GroupSchedule{0, stages - 1, 1,
                                                      Dataflow::Pyramid,
                                                      mask})
                          .transferBytes);
            if (pass == 0 && prev_storage >= 0) {
                // The BL column state grows with the tile height.
                EXPECT_GE(c.storageBytes, prev_storage);
            }
            if (pass == 1 && prev_extra >= 0) {
                // Taller tiles amortize vertical window re-use.
                EXPECT_LE(c.extraOps, prev_extra);
            }
            prev_storage = c.storageBytes;
            prev_extra = c.extraOps;
            EXPECT_GT(c.latencyCycles, 0);
            EXPECT_GT(c.energyPj, 0);
        }
    }
}

TEST(SchedulePricer, UniformStrideDropsColumnStateAndSramEnergy)
{
    Network net = vggEPrefix(2);
    SchedulePricer pricer(net);
    GroupSchedule pyr{0, 1, 1, Dataflow::Pyramid, ~0u};
    GroupSchedule us{0, 1, 1, Dataflow::UniformStride, ~0u};
    ScheduleCost cp = pricer.priceGroup(pyr);
    ScheduleCost cu = pricer.priceGroup(us);
    // Only the row (BT) halo persists: strictly less retained state on
    // a stride-1 conv stack (which has a real BL column).
    EXPECT_LT(cu.storageBytes, cp.storageBytes);
    // Intermediates stream through the array instead of bouncing
    // through SRAM, so modeled energy drops.
    EXPECT_LT(cu.energyPj, cp.energyPj);
    EXPECT_EQ(cu.transferBytes, cp.transferBytes);
    EXPECT_TRUE(cu.exact());
}

TEST(SchedulePricer, IndependentTilesAreApproximate)
{
    Network net = vggEPrefix(2);
    SchedulePricer pricer(net);
    ScheduleCost c = pricer.priceGroup(
        GroupSchedule{0, 1, 4, Dataflow::Independent, ~0u});
    // Halos are zero-padded away: no retained state, no recompute —
    // and the outputs differ from the reference at tile seams.
    EXPECT_EQ(c.storageBytes, 0);
    EXPECT_EQ(c.extraOps, 0);
    EXPECT_FALSE(c.exact());
}

TEST(SchedulePricer, TileAwareRecomputeReducesToPairwiseModel)
{
    // At 1-row tiles the per-boundary recompute sums to exactly the
    // legacy pairwise model over the group's layer range.
    Network net = alexnet();
    SchedulePricer pricer(net);
    const int stages = static_cast<int>(net.stages().size());
    for (int a = 0; a < stages; a++) {
        for (int b = a + 1; b < stages; b++) {
            ScheduleCost rec = pricer.priceGroup(
                GroupSchedule{a, b, 1, Dataflow::Pyramid, 0u});
            int fl, ll;
            groupLayerRange(net, StageGroup{a, b}, fl, ll);
            EXPECT_EQ(rec.extraOps,
                      pairwiseRecomputeExtraMultAdds(net, fl, ll))
                << "[" << a << "," << b << "]";
        }
    }
}

TEST(SchedulePricer, RepriceGroupEqualsFullReprice)
{
    Network net = vggEPrefix(5);
    SchedulePricer pricer(net);
    const int stages = static_cast<int>(net.stages().size());
    Schedule s = chainSchedule(partitionFromSizes({3, 2, 2}, stages));
    const ScheduleCost base = pricer.price(s);

    SweepOptions opt;
    for (const Schedule &n : neighborSchedules(net, s, opt)) {
        // Find the changed group (same partition shape required).
        if (schedulePartition(n) != schedulePartition(s))
            continue;
        size_t gi = 0;
        int changed = 0;
        for (size_t i = 0; i < s.groups.size(); i++) {
            if (!(n.groups[i] == s.groups[i])) {
                gi = i;
                changed++;
            }
        }
        ASSERT_EQ(changed, 1);
        ScheduleCost inc =
            pricer.repriceGroup(base, s.groups[gi], n.groups[gi]);
        ScheduleCost full = pricer.price(n);
        EXPECT_EQ(inc.storageBytes, full.storageBytes);
        EXPECT_EQ(inc.workingBytes, full.workingBytes);
        EXPECT_EQ(inc.transferBytes, full.transferBytes);
        EXPECT_EQ(inc.extraOps, full.extraOps);
        EXPECT_EQ(inc.latencyCycles, full.latencyCycles);
        EXPECT_EQ(inc.energyPj, full.energyPj);
        EXPECT_EQ(inc.approxGroups, full.approxGroups);
    }
}

TEST(SchedulePricer, PriceIsAdditiveOverGroups)
{
    Network net = alexnet();
    SchedulePricer pricer(net);
    const int stages = static_cast<int>(net.stages().size());
    Schedule s = chainSchedule(
        partitionFromSizes({2, 1, stages - 3}, stages));
    s.groups[2].tileH = 4;
    ScheduleCost whole = pricer.price(s);
    ScheduleCost sum;
    for (const GroupSchedule &g : s.groups)
        sum += pricer.priceGroup(g);
    EXPECT_EQ(whole.latencyCycles, sum.latencyCycles);
    EXPECT_EQ(whole.energyPj, sum.energyPj);
    EXPECT_EQ(whole.bufferBytes(), sum.bufferBytes());
}

} // namespace
} // namespace dse
} // namespace flcnn
