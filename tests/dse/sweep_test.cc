/**
 * @file
 * Sweep engine: chain-mode bit-identity with the legacy explorer, the
 * LoopTree surface's dominance over the chain front, executor spot
 * checks of priced schedules, neighbors, and the JSON emitter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>

#include "dse/exec.hh"
#include "dse/sweep.hh"
#include "model/explorer.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace dse {
namespace {

/** Chain-mode sweeps must reproduce exploreFusionSpace() bit for bit:
 *  same enumeration order, same costs, same front. */
void
expectChainBitIdentity(const Network &net, bool with_recompute,
                       Precision dtype)
{
    ExploreOptions eopt;
    eopt.withRecompute = with_recompute;
    eopt.dtype = dtype;
    ExplorationResult legacy = exploreFusionSpace(net, eopt);

    SweepOptions sopt;
    sopt.space = Space::Chain;
    sopt.cost.withRecompute = with_recompute;
    sopt.cost.dtype = dtype;
    SweepResult swept = runSweep(net, sopt);

    ASSERT_EQ(swept.points.size(), legacy.points.size());
    EXPECT_EQ(swept.pointsVisited,
              static_cast<int64_t>(legacy.points.size()));
    for (size_t i = 0; i < legacy.points.size(); i++) {
        EXPECT_EQ(swept.points[i].storageBytes,
                  legacy.points[i].storageBytes) << "point " << i;
        EXPECT_EQ(swept.points[i].transferBytes,
                  legacy.points[i].transferBytes) << "point " << i;
        EXPECT_EQ(swept.points[i].extraOps, legacy.points[i].extraOps)
            << "point " << i;
        EXPECT_EQ(swept.points[i].partition, legacy.points[i].partition)
            << "point " << i;
    }
    ASSERT_EQ(swept.legacyFront.size(), legacy.front.size());
    for (size_t i = 0; i < legacy.front.size(); i++) {
        EXPECT_EQ(swept.legacyFront[i].storageBytes,
                  legacy.front[i].storageBytes) << "front " << i;
        EXPECT_EQ(swept.legacyFront[i].transferBytes,
                  legacy.front[i].transferBytes) << "front " << i;
        EXPECT_EQ(swept.legacyFront[i].partition,
                  legacy.front[i].partition) << "front " << i;
    }
    // The fully-priced chain front mirrors the legacy front 1:1.
    ASSERT_EQ(swept.chainFront.size(), legacy.front.size());
    for (size_t i = 0; i < legacy.front.size(); i++) {
        EXPECT_EQ(swept.chainFront[i].cost.storageBytes,
                  legacy.front[i].storageBytes);
        EXPECT_EQ(swept.chainFront[i].cost.transferBytes,
                  legacy.front[i].transferBytes);
        EXPECT_EQ(schedulePartition(swept.chainFront[i].schedule),
                  legacy.front[i].partition);
    }
}

TEST(Sweep, ChainBitIdenticalToExplorerAlexNet)
{
    expectChainBitIdentity(alexnet(), false, Precision::Fp32);
    expectChainBitIdentity(alexnet(), true, Precision::Fp32);
}

TEST(Sweep, ChainBitIdenticalToExplorerVggE13Stages)
{
    Network net = vggEPrefix(10);
    ASSERT_EQ(net.stages().size(), 13u);
    expectChainBitIdentity(net, false, Precision::Fp32);
    expectChainBitIdentity(net, true, Precision::Int8);
}

TEST(Sweep, ChainSurfaceIsParetoAndCoversAllPoints)
{
    SweepOptions opt;
    SweepResult res = runSweep(vggEPrefix(5), opt);
    ASSERT_GE(res.front.size(), 3u);
    for (size_t a = 0; a < res.front.size(); a++) {
        const ScheduleCost &ca = res.front[a].cost;
        for (size_t b = 0; b < res.front.size(); b++) {
            if (a == b)
                continue;
            const ScheduleCost &cb = res.front[b].cost;
            // Mutual non-domination (strict).
            EXPECT_FALSE(ca.latencyCycles <= cb.latencyCycles &&
                         ca.energyPj <= cb.energyPj &&
                         ca.bufferBytes() <= cb.bufferBytes() &&
                         (ca.latencyCycles < cb.latencyCycles ||
                          ca.energyPj < cb.energyPj ||
                          ca.bufferBytes() < cb.bufferBytes()));
        }
    }
}

/** Every chain-front point must be weakly dominated by some surfaced
 *  point — the "dominates or matches" guarantee. */
void
expectFrontCoversChain(const SweepResult &res)
{
    for (const SweepPoint &c : res.chainFront) {
        bool covered = false;
        for (const SweepPoint &f : res.front) {
            if (f.cost.latencyCycles <= c.cost.latencyCycles &&
                f.cost.energyPj <= c.cost.energyPj &&
                f.cost.bufferBytes() <= c.cost.bufferBytes()) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered)
            << "chain point uncovered: "
            << c.cost.latencyCycles << " cyc, " << c.cost.energyPj
            << " pJ, " << c.cost.bufferBytes() << " B";
    }
}

TEST(Sweep, LoopTreeDominatesOrMatchesChainFront)
{
    Network net = vggEPrefix(5);
    SweepOptions opt;
    opt.space = Space::LoopTree;
    opt.pointBudget = 200'000;
    SweepResult res = runSweep(net, opt);
    EXPECT_GT(res.pointsVisited, 0);
    EXPECT_GT(res.frontierCapUsed, 0);
    ASSERT_GE(res.front.size(), 3u);
    expectFrontCoversChain(res);
    // Ascending-latency order.
    for (size_t i = 1; i < res.front.size(); i++)
        EXPECT_GE(res.front[i].cost.latencyCycles,
                  res.front[i - 1].cost.latencyCycles);
    // The chain front is exact and sorted by ascending storage.
    for (size_t i = 1; i < res.chainFront.size(); i++)
        EXPECT_GT(res.chainFront[i].cost.storageBytes,
                  res.chainFront[i - 1].cost.storageBytes);
}

TEST(Sweep, LoopTreeChainFrontMatchesLegacyValues)
{
    // The capped DP never touches the chain front's exactness: its
    // (storage, transfer) values must equal the legacy explorer's
    // front exactly.
    Network net = vggEPrefix(5);
    ExplorationResult legacy = exploreFusionSpace(net);
    SweepOptions opt;
    opt.space = Space::LoopTree;
    opt.pointBudget = 50'000;
    SweepResult res = runSweep(net, opt);
    ASSERT_EQ(res.chainFront.size(), legacy.front.size());
    for (size_t i = 0; i < legacy.front.size(); i++) {
        EXPECT_EQ(res.chainFront[i].cost.storageBytes,
                  legacy.front[i].storageBytes) << "front " << i;
        EXPECT_EQ(res.chainFront[i].cost.transferBytes,
                  legacy.front[i].transferBytes) << "front " << i;
    }
}

TEST(Sweep, RespectsPointBudgetOrder)
{
    Network net = vggEPrefix(5);
    SweepOptions opt;
    opt.space = Space::LoopTree;
    opt.pointBudget = 10'000;
    SweepResult res = runSweep(net, opt);
    // The cap derivation bounds DP combinations near the budget; allow
    // the exact (uncapped) chain DP's small additive term.
    EXPECT_LT(res.pointsVisited, 4 * opt.pointBudget);
    ASSERT_GE(res.front.size(), 3u);
    expectFrontCoversChain(res);
}

TEST(Sweep, ExecutorSpotChecksPricedMultiRowSchedule)
{
    // A retained multi-row-tile schedule the sweep prices must run on
    // the host executors bit-identically to the reference.
    Network net = vggEPrefix(3);
    const int stages = static_cast<int>(net.stages().size());
    Schedule s = chainSchedule(partitionFromSizes({2, stages - 2},
                                                  stages));
    s.groups[0].tileH = 3;
    s.groups[1].tileH = 2;
    EXPECT_EQ(scheduleExecutableReason(net, s), "");

    SchedulePricer pricer(net);
    ScheduleCost cost = pricer.price(s);
    EXPECT_GT(cost.bufferBytes(), 0);
    EXPECT_TRUE(cost.exact());

    Rng wrng(7);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inShape(0));
    Rng irng(7 ^ 0xbeef);
    input.fillRandom(irng);
    Tensor ref = runRange(net, weights, input, 0, net.numLayers() - 1);
    Tensor out = executeSchedule(net, weights, input, s);
    CompareResult cmp = compareTensors(ref, out);
    EXPECT_TRUE(cmp.match) << cmp.str();
}

TEST(Sweep, NonPyramidSchedulesAreNotExecutable)
{
    Network net = vggEPrefix(3);
    const int stages = static_cast<int>(net.stages().size());
    Schedule s = chainSchedule(partitionFromSizes({2, stages - 2},
                                                  stages));
    s.groups[0].flow = Dataflow::Independent;
    EXPECT_NE(scheduleExecutableReason(net, s), "");
    s.groups[0].flow = Dataflow::Pyramid;
    s.groups[0].retainMask = ~2u;  // recompute a meaningful boundary
    EXPECT_NE(scheduleExecutableReason(net, s), "");
}

TEST(Sweep, NeighborsAreValidDedupedAndLocal)
{
    Network net = vggEPrefix(5);
    const int stages = static_cast<int>(net.stages().size());
    Schedule s = chainSchedule(partitionFromSizes({3, 2, 2}, stages));
    SweepOptions opt;
    std::vector<Schedule> ns = neighborSchedules(net, s, opt);
    ASSERT_FALSE(ns.empty());
    bool saw_tile = false;
    std::vector<uint64_t> hashes;
    for (const Schedule &n : ns) {
        EXPECT_EQ(validateSchedule(net, n), "");
        // Neighbors keep the stage partition or change nothing else.
        EXPECT_EQ(schedulePartition(n), schedulePartition(s));
        for (const GroupSchedule &g : n.groups)
            saw_tile = saw_tile || g.tileH != 1;
        hashes.push_back(scheduleHash(net, n));
        EXPECT_NE(hashes.back(), scheduleHash(net, s));
    }
    EXPECT_TRUE(saw_tile);
    std::sort(hashes.begin(), hashes.end());
    EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()),
              hashes.end());
}

TEST(Sweep, WritesParetoJson)
{
    Network net = vggEPrefix(3);
    SweepOptions opt;
    opt.space = Space::LoopTree;
    opt.pointBudget = 20'000;
    SweepResult res = runSweep(net, opt);

    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    writeParetoJson(f, net, opt, res);
    std::fseek(f, 0, SEEK_SET);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    EXPECT_NE(text.find("\"schema\": \"flcnn-pareto-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"space\": \"looptree\""), std::string::npos);
    EXPECT_NE(text.find("\"frontier\""), std::string::npos);
    EXPECT_NE(text.find("\"chain_front\""), std::string::npos);
    EXPECT_NE(text.find("\"latency_cycles\""), std::string::npos);
}

} // namespace
} // namespace dse
} // namespace flcnn
