/**
 * @file
 * Solver registry and planConv(): the default chain reproduces the
 * pre-registry dispatch exactly, the fast-math tier is reachable only
 * through an explicit fastMath query, cached winners apply their
 * config (and are re-checked for applicability), and planning is
 * deterministic across repeated calls and thread counts.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "common/thread_pool.hh"
#include "kernels/conv_kernels.hh"
#include "kernels/conv_kernels_i8.hh"
#include "tune/solver.hh"
#include "tune/tune_cache.hh"

namespace flcnn {
namespace {

// The tests drive TuneCache::global() directly; force it memory-only
// before anything touches it so no file outside the build tree is
// read or written. (The environment is read once, at first use, and
// static initialization runs before any test body.)
const bool kGlobalCacheDisabled = [] {
    setenv("FLCNN_TUNE_CACHE", "", 1);
    return true;
}();

ConvQuery
query(int k, int s, Precision dtype = Precision::Fp32,
      bool fast = false)
{
    ConvQuery q;
    q.shape = ConvShape{k, s, 4, 8, 24, 8, 1};
    q.dtype = dtype;
    q.fastMath = fast;
    return q;
}

bool
sameFp32Kernels(const ConvBlockKernel &a, const ConvBlockKernel &b)
{
    if (a.k != b.k || a.sx != b.sx)
        return false;
    for (int mr = 0; mr <= kConvBlockLanes; mr++)
        if (a.fn[mr] != b.fn[mr])
            return false;
    return true;
}

bool
sameI8Kernels(const ConvBlockKernelI8 &a, const ConvBlockKernelI8 &b)
{
    if (a.k != b.k || a.sx != b.sx || a.k4 != b.k4)
        return false;
    for (int mr = 0; mr <= kConvBlockLanes; mr++)
        if (a.fn[mr] != b.fn[mr])
            return false;
    return true;
}

TEST(SolverRegistry, BuiltinsArePresentUniqueAndPrioritySorted)
{
    ASSERT_TRUE(kGlobalCacheDisabled);
    const std::vector<ConvSolver> &reg = convSolverRegistry();
    ASSERT_FALSE(reg.empty());

    // Names are unique, and within each dtype family (the set
    // planConvDefault scans for a query) priority is non-increasing —
    // the first applicable solver is the intended default.
    std::set<std::string> names;
    std::map<Precision, int> last;
    for (const ConvSolver &s : reg) {
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate solver " << s.name;
        auto it = last.find(s.dtype);
        if (it != last.end()) {
            EXPECT_GE(it->second, s.priority) << s.name;
        }
        last[s.dtype] = s.priority;
    }

    // The always-applicable fallbacks every query can land on.
    ASSERT_NE(findConvSolver("fp32.scalar"), nullptr);
    ASSERT_NE(findConvSolver("i8.scalar"), nullptr);
    EXPECT_TRUE(findConvSolver("fp32.scalar")->isApplicable(
        query(9, 3)));  // off-table shape
    EXPECT_EQ(findConvSolver("nope"), nullptr);
}

TEST(SolverRegistry, DefaultChainReproducesLegacyFp32Dispatch)
{
    const int grid[][2] = {{1, 1}, {3, 1}, {3, 2}, {5, 1},
                           {7, 2}, {11, 4}, {9, 3}};
    for (const auto &ks : grid) {
        const ConvQuery q = query(ks[0], ks[1]);
        const ConvPlan p = planConvDefault(q);
        EXPECT_FALSE(p.tuned);
        EXPECT_EQ(p.cfg.mrCap, kConvBlockLanes);
        EXPECT_EQ(p.cfg.segW, 0);
        EXPECT_EQ(p.cfg.grain, 1);
        EXPECT_EQ(p.bk.seg, 0);

        // Same function pointers as the pre-registry resolver: the
        // cold-cache path is the legacy dispatch, instruction for
        // instruction.
        EXPECT_TRUE(sameFp32Kernels(
            p.bk, resolveConvBlockKernel(ks[0], ks[1])))
            << "k=" << ks[0] << " s=" << ks[1];

        const bool table = ks[0] == 1 || ks[0] == 3 || ks[0] == 5 ||
                           ks[0] == 7 || ks[0] == 11;
        const bool vec = convSimdEnabled() && table && ks[1] != 3;
        EXPECT_EQ(p.solver, vec ? "fp32.avx2" : "fp32.scalar");
    }
}

TEST(SolverRegistry, DefaultChainReproducesLegacyI8Dispatch)
{
    for (int s : {1, 4}) {
        const ConvQuery q = query(s == 4 ? 11 : 3, s, Precision::Int8);
        const ConvPlan p = planConvDefault(q);
        EXPECT_TRUE(sameI8Kernels(
            p.bkI8, resolveConvBlockKernelI8(q.shape.kernel, s)));
        if (convVnniEnabled())
            EXPECT_EQ(p.solver, "i8.vnni");
        else if (convSimdEnabled())
            EXPECT_EQ(p.solver, "i8.maddubs");
        else
            EXPECT_EQ(p.solver, "i8.scalar");
    }
}

TEST(SolverRegistry, Fp16PlansThroughTheFp32Family)
{
    const ConvPlan p = planConvDefault(query(3, 1, Precision::Fp16));
    EXPECT_EQ(p.solver.rfind("fp32.", 0), 0u) << p.solver;
    EXPECT_TRUE(sameFp32Kernels(p.bk, resolveConvBlockKernel(3, 1)));
}

TEST(SolverRegistry, FastMathTierIsReachableOnlyByExplicitOptIn)
{
    // No solver may accept the fast-math tier for a default query —
    // the bit-exact contract of the default chain depends on it.
    const ConvSolver *fma = findConvSolver("fp32.fma");
    ASSERT_NE(fma, nullptr);
    for (const auto &ks :
         {std::pair<int, int>{1, 1}, {3, 1}, {5, 1}, {11, 4}})
        EXPECT_FALSE(fma->isApplicable(query(ks.first, ks.second)));

    const ConvPlan fast = planConvDefault(query(3, 1, Precision::Fp32,
                                                true));
    if (convFmaEnabled()) {
        EXPECT_EQ(fast.solver, "fp32.fma");
        EXPECT_TRUE(sameFp32Kernels(fast.bk,
                                    resolveConvBlockKernelFast(3, 1)));
    } else {
        // Without FMA the opt-in degrades to the exact chain.
        EXPECT_TRUE(sameFp32Kernels(fast.bk,
                                    resolveConvBlockKernel(3, 1)));
    }
}

TEST(SolverRegistry, ShapeKeySeparatesDtypeAndFastMath)
{
    ConvQuery q;
    q.shape = ConvShape{11, 4, 3, 96, 55, 55, 1};
    EXPECT_EQ(convShapeKey(q), "k11s4g1n3m96x55y55.f32");
    q.fastMath = true;
    EXPECT_EQ(convShapeKey(q), "k11s4g1n3m96x55y55.f32.fast");
    q.fastMath = false;
    q.dtype = Precision::Int8;
    EXPECT_EQ(convShapeKey(q), "k11s4g1n3m96x55y55.i8");
    q.dtype = Precision::Fp16;
    EXPECT_EQ(convShapeKey(q), "k11s4g1n3m96x55y55.f16");
}

TEST(PlanConv, ColdCacheEqualsDefaultChain)
{
    TuneCache::global().clear();
    const ConvQuery q = query(5, 1);
    const ConvPlan cold = planConv(q);
    const ConvPlan dflt = planConvDefault(q);
    EXPECT_FALSE(cold.tuned);
    EXPECT_EQ(cold.solver, dflt.solver);
    EXPECT_TRUE(sameFp32Kernels(cold.bk, dflt.bk));
}

TEST(PlanConv, CachedWinnerAppliesItsConfig)
{
    TuneCache::global().clear();
    const ConvQuery q = query(3, 1);
    TuneEntry e;
    e.solver = "fp32.scalar";
    e.mrCap = 2;
    e.segW = 16;
    e.grain = 2;
    TuneCache::global().store(convShapeKey(q), e);

    const ConvPlan p = planConv(q);
    EXPECT_TRUE(p.tuned);
    EXPECT_EQ(p.solver, "fp32.scalar");
    EXPECT_EQ(p.cfg.mrCap, 2);
    EXPECT_EQ(p.cfg.segW, 16);
    EXPECT_EQ(p.cfg.grain, 2);
    EXPECT_EQ(p.bk.seg, 16);
    EXPECT_TRUE(sameFp32Kernels(p.bk,
                                resolveConvBlockKernelScalar(3, 1)));
    TuneCache::global().clear();
}

TEST(PlanConv, StaleOrInapplicableEntriesDegradeToDefault)
{
    TuneCache::global().clear();
    const ConvQuery q = query(3, 1);

    // A solver name that no longer exists (hand-edited or future file).
    TuneEntry e;
    e.solver = "fp32.retired";
    TuneCache::global().store(convShapeKey(q), e);
    ConvPlan p = planConv(q);
    EXPECT_FALSE(p.tuned);
    EXPECT_EQ(p.solver, planConvDefault(q).solver);

    // An entry pinning the fast-math tier for a non-fast query: the
    // applicability re-check rejects it even though the solver exists.
    TuneCache::global().clear();
    e.solver = "fp32.fma";
    TuneCache::global().store(convShapeKey(q), e);
    p = planConv(q);
    EXPECT_FALSE(p.tuned);
    EXPECT_NE(p.solver, "fp32.fma");

    // Dtype mismatch: an fp32 winner stored under an int8 key.
    TuneCache::global().clear();
    const ConvQuery q8 = query(3, 1, Precision::Int8);
    e.solver = "fp32.scalar";
    TuneCache::global().store(convShapeKey(q8), e);
    p = planConv(q8);
    EXPECT_FALSE(p.tuned);
    EXPECT_EQ(p.solver, planConvDefault(q8).solver);
    TuneCache::global().clear();
}

TEST(PlanConv, DeterministicAcrossCallsAndThreadCounts)
{
    TuneCache::global().clear();
    const ConvQuery q = query(3, 1);
    TuneEntry e;
    e.solver = "fp32.scalar";
    e.mrCap = 2;
    e.segW = 32;
    e.grain = 4;
    TuneCache::global().store(convShapeKey(q), e);

    const ConvPlan first = planConv(q);
    for (int threads : {1, 4, 1}) {
        ThreadPool::setGlobalThreads(threads);
        const ConvPlan p = planConv(q);
        EXPECT_EQ(p.solver, first.solver);
        EXPECT_EQ(p.cfg.mrCap, first.cfg.mrCap);
        EXPECT_EQ(p.cfg.segW, first.cfg.segW);
        EXPECT_EQ(p.cfg.grain, first.cfg.grain);
        EXPECT_EQ(p.tuned, first.tuned);
        EXPECT_TRUE(sameFp32Kernels(p.bk, first.bk));
    }
    ThreadPool::setGlobalThreads(1);
    TuneCache::global().clear();
}

TEST(PlanConv, RegisteredSolversJoinTheChainByPriority)
{
    // A test-only solver above the built-ins for one odd shape: the
    // default chain must pick it there and ignore it elsewhere.
    ConvSolver s;
    s.name = "fp32.test_k13";
    s.dtype = Precision::Fp32;
    s.priority = 99;
    s.isApplicable = [](const ConvQuery &q) {
        return q.shape.kernel == 13;
    };
    s.resolve = [](const ConvQuery &q, const ConvConfig &cfg,
                   ConvPlan *p) {
        p->bk = resolveConvBlockKernelScalar(q.shape.kernel,
                                             q.shape.stride);
        p->bk.seg = cfg.segW;
    };
    registerConvSolver(s);

    EXPECT_EQ(planConvDefault(query(13, 1)).solver, "fp32.test_k13");
    EXPECT_NE(planConvDefault(query(3, 1)).solver, "fp32.test_k13");
}

} // namespace
} // namespace flcnn
