/**
 * @file
 * Autotuner: cold queries measure and store, warm queries hit the
 * cache with zero measurement, duplicate queries collapse, and the
 * winner is bit-invariant — a tuned plan produces the exact bits of
 * the default plan on the same inputs (tuning changes when the answer
 * arrives, never what it is).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/rng.hh"
#include "kernels/weight_pack.hh"
#include "tune/autotune.hh"
#include "tune/tune_cache.hh"

namespace flcnn {
namespace {

// Force the process-global cache memory-only before first use so the
// tuner never writes a file outside the build tree.
const bool kGlobalCacheDisabled = [] {
    setenv("FLCNN_TUNE_CACHE", "", 1);
    return true;
}();

/** Options that keep the microbenchmark cheap enough for CI. */
AutotuneOptions
fastOpts()
{
    AutotuneOptions opt;
    opt.minSampleMs = 0.2;
    opt.samples = 1;
    return opt;
}

ConvQuery
query(int k, int s, int out_w, Precision dtype = Precision::Fp32)
{
    ConvQuery q;
    q.shape = ConvShape{k, s, 4, 8, out_w, 6, 1};
    q.dtype = dtype;
    return q;
}

TEST(Autotune, ColdRunMeasuresWarmRunHitsTheCache)
{
    ASSERT_TRUE(kGlobalCacheDisabled);
    TuneCache::global().clear();
    const ConvQuery q = query(3, 1, 24);

    const AutotuneResult cold = autotuneConv(q, fastOpts());
    EXPECT_FALSE(cold.fromCache);
    EXPECT_GE(cold.candidates, 2);  // default plus at least one rival
    EXPECT_EQ(cold.shapeKey, convShapeKey(q));
    EXPECT_GT(cold.winner.gmacs, 0.0);

    // The winner names a registered solver that accepts this query.
    const ConvSolver *s = findConvSolver(cold.winner.solver);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->isApplicable(q));

    const AutotuneResult warm = autotuneConv(q, fastOpts());
    EXPECT_TRUE(warm.fromCache);
    EXPECT_EQ(warm.candidates, 0);
    EXPECT_EQ(warm.winner.solver, cold.winner.solver);
    EXPECT_EQ(warm.winner.mrCap, cold.winner.mrCap);
    EXPECT_EQ(warm.winner.segW, cold.winner.segW);
    EXPECT_EQ(warm.winner.grain, cold.winner.grain);
    TuneCache::global().clear();
}

TEST(Autotune, SweepCountsTunedVsCachedAndCollapsesDuplicates)
{
    TuneCache::global().clear();
    const ConvQuery qa = query(3, 1, 24);
    const ConvQuery qb = query(5, 1, 20);

    // qa appears twice: the second occurrence must ride the entry the
    // first one just stored.
    const AutotuneSummary s1 =
        autotuneQueries({qa, qa, qb}, fastOpts());
    EXPECT_EQ(s1.tuned, 2);
    EXPECT_EQ(s1.cached, 1);

    const AutotuneSummary s2 =
        autotuneQueries({qa, qa, qb}, fastOpts());
    EXPECT_EQ(s2.tuned, 0);
    EXPECT_EQ(s2.cached, 3);
    TuneCache::global().clear();
}

TEST(Autotune, ForceRetunesOverAWarmCache)
{
    TuneCache::global().clear();
    const ConvQuery q = query(3, 1, 24);
    (void)autotuneConv(q, fastOpts());

    AutotuneOptions opt = fastOpts();
    opt.force = true;
    const AutotuneResult r = autotuneConv(q, opt);
    EXPECT_FALSE(r.fromCache);
    EXPECT_GE(r.candidates, 2);
    TuneCache::global().clear();
}

/** The never-slower guarantee's bit half: whatever config wins, an
 *  exact solver's output is bit-identical to the default plan's —
 *  mrCap, segW and grain only re-partition independent work. */
TEST(Autotune, WinningPlanIsBitIdenticalToTheDefaultPlan)
{
    TuneCache::global().clear();
    const ConvQuery q = query(3, 1, 24);
    (void)autotuneConv(q, fastOpts());

    const ConvPlan tuned = planConv(q);
    const ConvPlan dflt = planConvDefault(q);

    Rng rng(29);
    const int k = q.shape.kernel, n = q.shape.inC, m = q.shape.outC;
    const int out_w = q.shape.outW;
    Tensor in(n, k + 2, out_w + k - 1);
    in.fillRandom(rng, -1.0f, 1.0f);
    FilterBank fb(m, n, k);
    fb.fillRandom(rng);

    const PackedWeights pwT(fb, 1, 0, tuned.cfg.mrCap);
    const PackedWeights pwD(fb, 1, 0, dflt.cfg.mrCap);
    std::vector<float> got(static_cast<size_t>(m) * out_w);
    std::vector<float> want(got);
    for (int bi = 0; bi < pwT.numBlocks(); bi++)
        convBlockRowTensor(tuned.bk, pwT, bi,
                           got.data() +
                               static_cast<size_t>(pwT.block(bi).m0) *
                                   out_w,
                           out_w, out_w, in, 1, 0);
    for (int bi = 0; bi < pwD.numBlocks(); bi++)
        convBlockRowTensor(dflt.bk, pwD, bi,
                           want.data() +
                               static_cast<size_t>(pwD.block(bi).m0) *
                                   out_w,
                           out_w, out_w, in, 1, 0);
    EXPECT_EQ(got, want);
    TuneCache::global().clear();
}

TEST(Autotune, Int8QueriesTuneThroughTheSameCache)
{
    TuneCache::global().clear();
    const ConvQuery q = query(3, 1, 24, Precision::Int8);
    const AutotuneResult r = autotuneConv(q, fastOpts());
    EXPECT_FALSE(r.fromCache);
    const ConvSolver *s = findConvSolver(r.winner.solver);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->dtype, Precision::Int8);
    EXPECT_TRUE(autotuneConv(q, fastOpts()).fromCache);
    TuneCache::global().clear();
}

} // namespace
} // namespace flcnn
