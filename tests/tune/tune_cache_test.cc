/**
 * @file
 * TuneCache: in-memory round trips, JSON persistence, wholesale
 * rejection of malformed files, and fingerprint isolation (a cache
 * file from another machine is ignored, never mis-applied).
 *
 * File-backed cases use temporary files in the test's working
 * directory (inside the build tree) and remove them on exit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "tune/host_probe.hh"
#include "tune/tune_cache.hh"

namespace flcnn {
namespace {

TuneEntry
entry(const std::string &solver, int mr, int seg, int grain,
      double gmacs = 1.5)
{
    TuneEntry e;
    e.solver = solver;
    e.mrCap = mr;
    e.segW = seg;
    e.grain = grain;
    e.gmacs = gmacs;
    return e;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A temp file in the CWD (the build tree), removed on destruction. */
struct TempFile
{
    std::string path;
    explicit TempFile(const std::string &name) : path(name) {}
    ~TempFile() { std::remove(path.c_str()); }
};

TEST(TuneCache, MemoryOnlyRoundTrip)
{
    TuneCache c;
    EXPECT_EQ(c.path(), "");
    EXPECT_EQ(c.size(), 0);
    EXPECT_FALSE(c.save());  // nothing to persist to

    TuneEntry out;
    EXPECT_FALSE(c.lookup("k3s1g1n4m8x24y8.f32", &out));

    const int64_t rev0 = c.revision();
    c.store("k3s1g1n4m8x24y8.f32", entry("fp32.avx2", 2, 16, 2, 7.25));
    EXPECT_EQ(c.size(), 1);
    EXPECT_GT(c.revision(), rev0);

    ASSERT_TRUE(c.lookup("k3s1g1n4m8x24y8.f32", &out));
    EXPECT_EQ(out.solver, "fp32.avx2");
    EXPECT_EQ(out.mrCap, 2);
    EXPECT_EQ(out.segW, 16);
    EXPECT_EQ(out.grain, 2);
    EXPECT_DOUBLE_EQ(out.gmacs, 7.25);

    c.clear();
    EXPECT_EQ(c.size(), 0);
    EXPECT_FALSE(c.lookup("k3s1g1n4m8x24y8.f32", &out));
}

TEST(TuneCache, FileRoundTripAcrossInstances)
{
    TempFile f("tune_cache_test_roundtrip.json");
    {
        TuneCache a(f.path);
        EXPECT_EQ(a.path(), f.path);
        a.store("k3s1g1n4m8x24y8.f32", entry("fp32.avx2", 4, 0, 1));
        a.store("k11s4g1n3m96x55y55.i8", entry("i8.scalar", 1, 32, 4));
    }

    // A fresh process (modeled by a fresh instance) sees both entries
    // with every field intact.
    TuneCache b(f.path);
    EXPECT_EQ(b.size(), 2);
    TuneEntry out;
    ASSERT_TRUE(b.lookup("k3s1g1n4m8x24y8.f32", &out));
    EXPECT_EQ(out.solver, "fp32.avx2");
    EXPECT_EQ(out.mrCap, 4);
    ASSERT_TRUE(b.lookup("k11s4g1n3m96x55y55.i8", &out));
    EXPECT_EQ(out.solver, "i8.scalar");
    EXPECT_EQ(out.segW, 32);
    EXPECT_EQ(out.grain, 4);

    // The file itself is versioned and keyed by this machine.
    const std::string text = slurp(f.path);
    EXPECT_NE(text.find("flcnn-tune-v1"), std::string::npos);
    EXPECT_NE(text.find(hostProfile().fingerprint()),
              std::string::npos);
}

TEST(TuneCache, MalformedFileIsIgnoredInFull)
{
    TempFile f("tune_cache_test_malformed.json");
    {
        std::ofstream out(f.path);
        out << "{\"schema\": \"flcnn-tune-v1\", \"machines\": {";
        // truncated mid-object: parse must fail, nothing applied
    }
    TuneCache c(f.path);
    EXPECT_EQ(c.size(), 0);

    // A store() replaces the broken file with a well-formed one.
    c.store("k1s1g1n2m4x8y8.f32", entry("fp32.scalar", 1, 0, 1));
    TuneCache d(f.path);
    TuneEntry out;
    EXPECT_TRUE(d.lookup("k1s1g1n2m4x8y8.f32", &out));

    // Wrong schema string: same wholesale rejection.
    {
        std::ofstream o2(f.path);
        o2 << "{\"schema\": \"flcnn-tune-v999\", \"machines\": {}}";
    }
    TuneCache e(f.path);
    EXPECT_EQ(e.size(), 0);
}

TEST(TuneCache, ForeignFingerprintIsIgnoredNotMisapplied)
{
    TempFile f("tune_cache_test_this_machine.json");
    TempFile g("tune_cache_test_other_machine.json");
    {
        TuneCache a(f.path);
        a.store("k3s1g1n4m8x24y8.f32", entry("fp32.avx2", 4, 0, 1));
    }

    // Rewrite the machine key: the same entries now claim to belong
    // to a different host. Loading must drop them for this host.
    std::string text = slurp(f.path);
    const std::string fp = hostProfile().fingerprint();
    const size_t at = text.find(fp);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, fp.size(), "some_other_machine;t64;none");
    {
        std::ofstream out(g.path);
        out << text;
    }

    TuneCache b(g.path);
    EXPECT_EQ(b.size(), 0);  // size() counts this host's entries
    TuneEntry out;
    EXPECT_FALSE(b.lookup("k3s1g1n4m8x24y8.f32", &out));

    // Storing for this host must not clobber the foreign machine's
    // section — both fingerprints coexist in the file afterwards.
    b.store("k5s1g1n2m4x8y8.f32", entry("fp32.scalar", 1, 0, 1));
    const std::string merged = slurp(g.path);
    EXPECT_NE(merged.find("some_other_machine"), std::string::npos);
    EXPECT_NE(merged.find(fp), std::string::npos);
}

TEST(TuneCache, ExplicitLoadPicksUpExternalWrites)
{
    TempFile f("tune_cache_test_reload.json");
    TuneCache writer(f.path);
    TuneCache reader(f.path);
    EXPECT_EQ(reader.size(), 0);

    writer.store("k7s2g1n4m8x16y16.f32", entry("fp32.avx2", 2, 0, 2));
    const int64_t rev = reader.revision();
    ASSERT_TRUE(reader.load());
    EXPECT_GT(reader.revision(), rev);
    TuneEntry out;
    ASSERT_TRUE(reader.lookup("k7s2g1n4m8x16y16.f32", &out));
    EXPECT_EQ(out.grain, 2);
}

} // namespace
} // namespace flcnn
