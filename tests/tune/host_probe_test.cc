/**
 * @file
 * HostProfile: the probe runs once, reports a sane machine
 * description, and produces a stable whitespace-free fingerprint that
 * can key a JSON cache file.
 */

#include <gtest/gtest.h>

#include "tune/host_probe.hh"

namespace flcnn {
namespace {

TEST(HostProbe, ProfileIsSaneAndCachedPerProcess)
{
    const HostProfile &p = hostProfile();
    EXPECT_GE(p.threads, 1);
    EXPECT_GE(p.l1dBytes, 0);
    EXPECT_GE(p.l2Bytes, 0);
    EXPECT_GE(p.l3Bytes, 0);
    if (p.avx2) {
        EXPECT_GE(p.simdWidthBytes, 32);
    }
    // FMA and VNNI gate kernel tiers that are compiled against AVX2
    // intrinsics; the probe must never report them without it.
    if (p.fma || p.avxVnni) {
        EXPECT_TRUE(p.avx2);
    }

    // One probe per process: the second call returns the same object.
    EXPECT_EQ(&p, &hostProfile());
}

TEST(HostProbe, FingerprintIsStableAndKeySafe)
{
    const HostProfile &p = hostProfile();
    const std::string fp = p.fingerprint();
    ASSERT_FALSE(fp.empty());
    EXPECT_EQ(fp, p.fingerprint());  // pure function of the profile

    // The fingerprint keys a JSON object and is matched verbatim on
    // load — no whitespace, quotes, or control characters allowed.
    for (char ch : fp) {
        EXPECT_NE(ch, ' ');
        EXPECT_NE(ch, '"');
        EXPECT_NE(ch, '\\');
        EXPECT_FALSE(ch == '\n' || ch == '\r' || ch == '\t');
    }

    // Thread count and cache sizes are part of the identity: a
    // different topology must produce a different fingerprint.
    EXPECT_NE(fp.find(";t" + std::to_string(p.threads)),
              std::string::npos);
    EXPECT_NE(fp.find("l1="), std::string::npos);
}

} // namespace
} // namespace flcnn
