/** @file Executable baseline accelerator: function + measured costs. */

#include <gtest/gtest.h>

#include "accel/baseline_accel.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

struct AccelRun
{
    Tensor out;
    AccelStats stats;
};

AccelRun
runBaseline(const Network &net, BaselineConfig cfg, uint64_t seed)
{
    Rng wrng(seed);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(seed ^ 0xfeed);
    input.fillRandom(irng);

    BaselineAccelerator accel(net, weights, cfg);
    AccelRun r{Tensor{}, {}};
    r.out = accel.run(input, &r.stats);

    // Functional equivalence with the layer-by-layer reference over the
    // fusable prefix.
    int last = net.stages().back().last;
    Tensor ref = runRange(net, weights, input, 0, last);
    CompareResult cmp = compareTensors(ref, r.out);
    EXPECT_TRUE(cmp.match) << net.name() << ": " << cmp.str();
    return r;
}

TEST(BaselineAccel, MatchesReferenceSimple)
{
    Network net("t", Shape{3, 16, 16});
    net.addConvBlock("c1", 8, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    runBaseline(net, BaselineConfig{4, 2, 4, 4}, 1);
}

TEST(BaselineAccel, MatchesReferenceWholePlaneTiles)
{
    Network net("t", Shape{3, 16, 16});
    net.addConvBlock("c1", 8, 3, 1, 1);
    runBaseline(net, BaselineConfig{8, 3, 0, 0}, 2);
}

TEST(BaselineAccel, MatchesReferenceRaggedTiles)
{
    // Tile sizes that do not divide the plane.
    Network net("t", Shape{3, 19, 17});
    net.add(LayerSpec::conv("c1", 5, 3, 2));
    net.add(LayerSpec::relu("r1"));
    runBaseline(net, BaselineConfig{2, 2, 3, 5}, 3);
}

TEST(BaselineAccel, MatchesReferenceGrouped)
{
    Network net("t", Shape{4, 14, 14});
    net.add(LayerSpec::conv("c1", 6, 3, 1, 2));
    net.add(LayerSpec::conv("c2", 4, 3, 1, 2));
    runBaseline(net, BaselineConfig{2, 1, 4, 4}, 4);
}

TEST(BaselineAccel, MatchesReferenceUnrollsLargerThanLayer)
{
    Network net("t", Shape{2, 10, 10});
    net.add(LayerSpec::conv("c1", 3, 3, 1));
    runBaseline(net, BaselineConfig{64, 64, 0, 0}, 5);
}

TEST(BaselineAccel, PoolFirstNetwork)
{
    Network net("t", Shape{4, 16, 16});
    net.add(LayerSpec::pool("p0", 2, 2));
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    runBaseline(net, BaselineConfig{4, 4, 0, 0}, 6);
}

TEST(BaselineAccel, MeasuredTrafficMatchesAnalyticModel)
{
    // DESIGN.md invariant 3: measured DRAM bytes == analytic model.
    Network net = vggEPrefix(2);
    BaselineConfig cfg{16, 8, 16, 16};
    AccelRun r = runBaseline(net, cfg, 7);
    BaselineCost model = evaluateBaseline(net, cfg);
    EXPECT_EQ(r.stats.totalDramBytes(), model.totalBytes);
}

TEST(BaselineAccel, MeasuredCyclesMatchAnalyticModel)
{
    Network net = vggEPrefix(2);
    BaselineConfig cfg{16, 8, 16, 16};
    AccelRun r = runBaseline(net, cfg, 8);
    BaselineCost model = evaluateBaseline(net, cfg);
    EXPECT_EQ(r.stats.computeCycles, model.totalCycles);
}

TEST(BaselineAccel, MeasuredMatchesModelOnAlexNetPrefix)
{
    Network net = alexnetFusedPrefix();
    BaselineConfig cfg{64, 7, 0, 0};
    AccelRun r = runBaseline(net, cfg, 9);
    BaselineCost model = evaluateBaseline(net, cfg);
    EXPECT_EQ(r.stats.totalDramBytes(), model.totalBytes);
    EXPECT_EQ(r.stats.computeCycles, model.totalCycles);
}

TEST(BaselineAccel, MakespanAtLeastComputeAndAtMostSerial)
{
    Network net = vggEPrefix(1);
    BaselineConfig cfg{16, 3, 16, 16};
    AccelRun r = runBaseline(net, cfg, 10);
    EXPECT_GE(r.stats.makespanCycles, r.stats.computeCycles);
}

TEST(BaselineAccel, SmallerTmMeansMoreInputTraffic)
{
    Network net = vggEPrefix(1);
    AccelRun big = runBaseline(net, BaselineConfig{64, 3, 0, 0}, 11);
    AccelRun small = runBaseline(net, BaselineConfig{16, 3, 0, 0}, 11);
    EXPECT_GT(small.stats.dramReadBytes, big.stats.dramReadBytes);
}

TEST(BaselineAccel, ResourcesReported)
{
    Network net = vggEPrefix(1);
    AccelRun r = runBaseline(net, BaselineConfig{16, 3, 16, 16}, 12);
    EXPECT_EQ(r.stats.dsp, 16 * 3 * 5);
    EXPECT_GT(r.stats.bram, 0);
    EXPECT_GT(r.stats.bufferBytes, 0);
}

class BaselineAccelRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(BaselineAccelRandom, MatchesReferenceOnRandomNetworks)
{
    const uint64_t seed = static_cast<uint64_t>(GetParam());
    Rng rng(seed * 6151 + 11);
    Network net = randomFusableNet(rng);
    if (net.convLayers().empty())
        GTEST_SKIP() << "no convolutions";
    BaselineConfig cfg{rng.range(1, 8), rng.range(1, 4),
                       rng.range(0, 6), rng.range(0, 6)};
    runBaseline(net, cfg, seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineAccelRandom,
                         ::testing::Range(0, 25));

} // namespace
} // namespace flcnn
