/**
 * @file
 * PartitionExecutor: Figure 4 multi-pyramid evaluation — functional
 * equivalence and measured-vs-model traffic across whole partitions.
 */

#include <gtest/gtest.h>

#include "accel/partition_executor.hh"
#include "common/thread_pool.hh"
#include "model/transfer.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

Network
smallVggish()
{
    Network net("pvgg", Shape{3, 24, 24});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addConvBlock("c2", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c3", 6, 3, 1, 1);
    return net;
}

void
runPartition(const Network &net, const Partition &p, uint64_t seed,
             PartitionRunStats *stats_out = nullptr)
{
    Rng wrng(seed);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(seed ^ 0xdead);
    input.fillRandom(irng);

    PartitionExecutor exec(net, weights, p);
    PartitionRunStats stats;
    Tensor out = exec.run(input, &stats);

    Tensor ref = runRange(net, weights, input, 0,
                          net.stages().back().last);
    CompareResult cmp = compareTensors(ref, out);
    EXPECT_TRUE(cmp.match)
        << partitionStr(p) << ": " << cmp.str();
    if (stats_out)
        *stats_out = stats;
}

TEST(PartitionExecutor, EveryPartitionMatchesReference)
{
    Network net = smallVggish();
    int stages = static_cast<int>(net.stages().size());
    for (const Partition &p : enumeratePartitions(stages))
        runPartition(net, p, 51);
}

TEST(PartitionExecutor, MeasuredTrafficEqualsFigure7Model)
{
    // DESIGN.md invariant 3 at partition scope: on exactly-dividing
    // geometry the measured DRAM traffic equals the exploration-tool
    // transfer model for every partition.
    Network net = smallVggish();
    int stages = static_cast<int>(net.stages().size());
    for (const Partition &p : enumeratePartitions(stages)) {
        PartitionRunStats stats;
        runPartition(net, p, 52, &stats);
        EXPECT_EQ(stats.totalDramBytes(), partitionTransferBytes(net, p))
            << partitionStr(p);
    }
}

TEST(PartitionExecutor, SingletonsMeanLayerByLayer)
{
    Network net = smallVggish();
    int stages = static_cast<int>(net.stages().size());
    PartitionRunStats stats;
    runPartition(net, singletonPartition(stages), 53, &stats);
    EXPECT_EQ(stats.totalDramBytes(), layerByLayerTransferBytes(net));
    EXPECT_EQ(stats.groups.size(), static_cast<size_t>(stages));
}

TEST(PartitionExecutor, FullFusionMovesOnlyEndpoints)
{
    Network net = smallVggish();
    int stages = static_cast<int>(net.stages().size());
    PartitionRunStats stats;
    runPartition(net, fullFusionPartition(stages), 54, &stats);
    EXPECT_EQ(stats.dramReadBytes, net.inputShape().bytes());
    EXPECT_EQ(stats.dramWriteBytes, net.outputShape().bytes());
}

TEST(PartitionExecutor, ArithmeticIsPartitionInvariant)
{
    // The reuse model computes the baseline arithmetic regardless of
    // partitioning.
    Network net = smallVggish();
    int stages = static_cast<int>(net.stages().size());
    PartitionRunStats a, b;
    runPartition(net, singletonPartition(stages), 55, &a);
    runPartition(net, fullFusionPartition(stages), 55, &b);
    EXPECT_EQ(a.ops.mults, b.ops.mults);
    EXPECT_EQ(a.ops.adds, b.ops.adds);
}

TEST(PartitionExecutor, WiderTipsStayCorrect)
{
    Network net = smallVggish();
    int stages = static_cast<int>(net.stages().size());
    Rng wrng(56);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(57);
    input.fillRandom(irng);
    Tensor ref = runRange(net, weights, input, 0,
                          net.stages().back().last);
    for (int tip : {2, 3, 5}) {
        PartitionExecutor exec(net, weights,
                               partitionFromSizes({2, 2}, stages), tip);
        Tensor out = exec.run(input);
        EXPECT_TRUE(tensorsEqual(ref, out)) << "tip " << tip;
    }
}

/** RAII: run a scope at a fixed global thread count, then restore the
 *  default so other tests are unaffected. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(int n) { ThreadPool::setGlobalThreads(n); }
    ~ScopedThreads() { ThreadPool::setGlobalThreads(0); }
};

TEST(PartitionExecutor, BitExactAcrossThreadCounts)
{
    // Every pyramid delegates to the threaded FusedExecutor; the whole
    // partition's output must be invariant to the pool width, bitwise,
    // against a serial reference.
    Network net = smallVggish();
    int stages = static_cast<int>(net.stages().size());
    Rng wrng(59);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(60);
    input.fillRandom(irng);

    Tensor ref;
    {
        ScopedThreads serial(1);
        ref = runRange(net, weights, input, 0,
                       net.stages().back().last);
    }
    for (int threads : {1, 2, 8}) {
        ScopedThreads scope(threads);
        for (const Partition &p :
             {singletonPartition(stages), fullFusionPartition(stages)}) {
            PartitionExecutor exec(net, weights, p);
            Tensor out = exec.run(input);
            ASSERT_TRUE(tensorsEqual(ref, out))
                << partitionStr(p) << " threads=" << threads;
        }
    }
}

TEST(PartitionExecutorDeath, InvalidPartitionIsFatal)
{
    Network net = smallVggish();
    Rng rng(58);
    NetworkWeights weights(net, rng);
    Partition bad{StageGroup{0, 0}};
    EXPECT_EXIT(PartitionExecutor(net, weights, bad),
                ::testing::ExitedWithCode(1), "invalid partition");
}

class PartitionExecutorRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(PartitionExecutorRandom, RandomNetsRandomPartitions)
{
    const uint64_t seed = static_cast<uint64_t>(GetParam());
    Rng rng(seed * 433 + 7);
    Network net = randomFusableNet(rng);
    int stages = static_cast<int>(net.stages().size());
    if (stages == 0)
        GTEST_SKIP();
    auto all = enumeratePartitions(stages);
    const Partition &p =
        all[static_cast<size_t>(rng.rangeI64(0,
                                             static_cast<int64_t>(
                                                 all.size()) -
                                                 1))];
    runPartition(net, p, seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionExecutorRandom,
                         ::testing::Range(0, 20));

} // namespace
} // namespace flcnn
