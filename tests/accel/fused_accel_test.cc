/** @file Executable fused accelerator: function, traffic, schedule. */

#include <gtest/gtest.h>

#include "accel/baseline_accel.hh"
#include "accel/fused_accel.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

struct AccelRun
{
    Tensor out;
    AccelStats stats;
};

AccelRun
runFused(const Network &net, int dsp_budget, uint64_t seed)
{
    Rng wrng(seed);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(seed ^ 0xcafe);
    input.fillRandom(irng);

    int last = net.numLayers() - 1;
    auto pcfg = balanceFusedPipeline(net, 0, last, dsp_budget);
    FusedAccelerator accel(net, weights, 0, last, pcfg);
    AccelRun r{Tensor{}, {}};
    r.out = accel.run(input, &r.stats);

    Tensor ref = runRange(net, weights, input, 0, last);
    CompareResult cmp = compareTensors(ref, r.out);
    EXPECT_TRUE(cmp.match) << net.name() << ": " << cmp.str();
    return r;
}

TEST(FusedAccel, MatchesReferenceVggStyle)
{
    Network net("vgg-ish", Shape{3, 24, 24});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addConvBlock("c2", 6, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c3", 8, 3, 1, 1);
    runFused(net, 300, 21);
}

TEST(FusedAccel, MatchesReferenceAlexNetStyle)
{
    Network net("alex-ish", Shape{3, 59, 59});
    net.add(LayerSpec::conv("conv1", 8, 11, 4));
    net.add(LayerSpec::relu("relu1"));
    net.addMaxPool("pool1", 3, 2);
    net.add(LayerSpec::padding("conv2_pad", 2));
    net.add(LayerSpec::conv("conv2", 12, 5, 1, 2));
    net.add(LayerSpec::relu("relu2"));
    runFused(net, 400, 22);
}

TEST(FusedAccel, TrafficIsEndpointPlanesPlusWeights)
{
    Network net("t", Shape{3, 20, 20});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addConvBlock("c2", 6, 3, 1, 1);
    AccelRun r = runFused(net, 200, 23);
    int64_t weights = net.weightBytesInRange(0, net.numLayers() - 1);
    EXPECT_EQ(r.stats.dramReadBytes,
              net.inputShape().bytes() + weights);
    EXPECT_EQ(r.stats.dramWriteBytes, net.outputShape().bytes());
}

TEST(FusedAccel, TransfersFarLessThanBaseline)
{
    // The headline claim, on a shrunk VGG-style stack.
    Network net("v", Shape{3, 40, 40});
    net.addConvBlock("c1", 8, 3, 1, 1);
    net.addConvBlock("c2", 8, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c3", 16, 3, 1, 1);

    Rng wrng(24);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(25);
    input.fillRandom(irng);

    auto pcfg = balanceFusedPipeline(net, 0, net.numLayers() - 1, 300);
    FusedAccelerator fused(net, weights, 0, net.numLayers() - 1, pcfg);
    AccelStats fs;
    Tensor fo = fused.run(input, &fs);

    BaselineAccelerator base(net, weights, BaselineConfig{8, 3, 8, 8});
    AccelStats bs;
    Tensor bo = base.run(input, &bs);

    EXPECT_TRUE(tensorsEqual(fo, bo));
    EXPECT_LT(2 * fs.totalDramBytes(), bs.totalDramBytes());
}

TEST(FusedAccel, ScheduleInvariants)
{
    Network net("t", Shape{3, 18, 18});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addConvBlock("c2", 4, 3, 1, 1);
    AccelRun r = runFused(net, 150, 26);
    EXPECT_GE(r.stats.makespanCycles, r.stats.computeCycles /
                                          (net.convLayers().size() + 0));
    EXPECT_GT(r.stats.makespanCycles, 0);
}

TEST(FusedAccel, MakespanBoundedByStageBusySums)
{
    Network net("t", Shape{3, 18, 18});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addConvBlock("c2", 4, 3, 1, 1);

    Rng wrng(27);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(28);
    input.fillRandom(irng);

    auto pcfg = balanceFusedPipeline(net, 0, net.numLayers() - 1, 150);
    FusedAccelerator accel(net, weights, 0, net.numLayers() - 1, pcfg);
    accel.run(input);

    const PipelineSchedule &s = accel.schedule();
    int64_t total_busy = 0;
    for (int st = 0; st < s.numStages(); st++) {
        EXPECT_LE(s.stageBusy(st), s.makespan());
        total_busy += s.stageBusy(st);
    }
    EXPECT_LE(s.makespan(), total_busy + 1);
    EXPECT_GE(s.makespan(),
              total_busy / static_cast<int64_t>(s.numStages()));
}

TEST(FusedAccel, StageCyclesScaleWithUnroll)
{
    Network net("t", Shape{3, 18, 18});
    net.add(LayerSpec::conv("c1", 8, 3, 1));

    Rng wrng(29);
    NetworkWeights weights(net, wrng);

    FusedPipelineConfig small;
    small.unrolls = {LayerUnroll{0, 1, 1}};
    FusedPipelineConfig big;
    big.unrolls = {LayerUnroll{0, 8, 3}};

    FusedAccelerator a(net, weights, 0, 0, small);
    FusedAccelerator b(net, weights, 0, 0, big);
    EXPECT_GT(a.stageCycles(0, 1, 1), b.stageCycles(0, 1, 1));
}

TEST(FusedAccel, ComputeCyclesMatchBalancedModelTotals)
{
    // The sum over pyramids of a conv stage's fresh work equals the
    // whole-image formula the balance model uses.
    Network net("t", Shape{3, 20, 20});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::conv("c2", 6, 3, 1));

    Rng wrng(30);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(31);
    input.fillRandom(irng);

    auto pcfg = balanceFusedPipeline(net, 0, 1, 100);
    FusedAccelerator accel(net, weights, 0, 1, pcfg);
    accel.run(input);

    const PipelineSchedule &s = accel.schedule();
    // Stage 1 = conv c1, stage 2 = conv c2 (stage 0 is the load).
    EXPECT_EQ(s.stageBusy(1), pcfg.layerCycles(net, 0));
    EXPECT_EQ(s.stageBusy(2), pcfg.layerCycles(net, 1));
}

class FusedAccelRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(FusedAccelRandom, MatchesReferenceOnRandomNetworks)
{
    const uint64_t seed = static_cast<uint64_t>(GetParam());
    Rng rng(seed * 911 + 17);
    Network net = randomFusableNet(rng);
    if (net.convLayers().empty())
        GTEST_SKIP() << "no convolutions";
    runFused(net, 2000, seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedAccelRandom, ::testing::Range(0, 20));

} // namespace
} // namespace flcnn
