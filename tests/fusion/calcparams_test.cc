/**
 * @file
 * The paper's calcparams formulas vs. our span machinery: on clip-free
 * geometry (no padding, exactly dividing shapes) the TilePlan's
 * compute spans must agree with Section IV-B's arithmetic at every
 * pyramid — a cross-validation of the geometry core against the
 * paper's own equations.
 */

#include <gtest/gtest.h>

#include "fusion/calcparams.hh"
#include "fusion/plan.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

/** A pad-free stack whose shapes divide exactly. */
Network
cleanNet()
{
    Network net("clean", Shape{2, 38, 38});
    net.add(LayerSpec::conv("c1", 3, 3, 1));  // 36
    net.add(LayerSpec::relu("r1"));
    net.add(LayerSpec::conv("c2", 4, 3, 1));  // 34
    net.add(LayerSpec::pool("p1", 2, 2));     // 17
    net.add(LayerSpec::conv("c3", 2, 3, 1));  // 15
    return net;
}

TEST(CalcParams, DerivedConfigMatchesBackwardRecursion)
{
    Network net = cleanNet();
    CalcParamsConfig cfg = deriveCalcParams(net, 0, net.numLayers() - 1);
    // Backward: 1 ->(c3) 3 ->(p1) 6 ->(c2) 8 ->(c1) 10.
    EXPECT_EQ(cfg.x, 10);
    EXPECT_EQ(cfg.y, 10);
    // Stride product: 1 * 2 * 1 * 1 = 2.
    EXPECT_EQ(cfg.sx, 2);
    EXPECT_EQ(cfg.sy, 2);
}

TEST(CalcParams, FirstPyramidComputesTheFullBase)
{
    Network net = cleanNet();
    CalcParamsConfig cfg = deriveCalcParams(net, 0, net.numLayers() - 1);
    IterationParams it =
        calcParams(net, 0, net.numLayers() - 1, cfg, 0, 0);
    EXPECT_EQ(it.rowt, 0);
    EXPECT_EQ(it.colt, 0);
    ASSERT_EQ(it.layers.size(), 4u);
    EXPECT_EQ(it.layers[0].inW, 10);   // X
    EXPECT_EQ(it.layers[0].outW, 8);
    EXPECT_EQ(it.layers[1].inW, 8);
    EXPECT_EQ(it.layers[1].outW, 6);
    EXPECT_EQ(it.layers[2].inW, 6);    // pool
    EXPECT_EQ(it.layers[2].outW, 3);
    EXPECT_EQ(it.layers[3].inW, 3);
    EXPECT_EQ(it.layers[3].outW, 1);   // the tip
}

TEST(CalcParams, InteriorPyramidsComputeSlivers)
{
    Network net = cleanNet();
    CalcParamsConfig cfg = deriveCalcParams(net, 0, net.numLayers() - 1);
    IterationParams it =
        calcParams(net, 0, net.numLayers() - 1, cfg, 3, 3);
    // Layer 1 loads an (Sx + K - S)-wide sliver.
    EXPECT_EQ(it.layers[0].inW, 2 + 3 - 1);
    EXPECT_EQ(it.layers[0].outW, 2);
    // 2x2/s2 pool has no carried columns.
    EXPECT_EQ(it.layers[2].inW, it.layers[1].outW);
    // The tip is one pixel.
    EXPECT_EQ(it.layers.back().outW, 1);
    EXPECT_EQ(it.layers.back().outH, 1);
    // Load coordinates step by Sx per column.
    IterationParams it4 =
        calcParams(net, 0, net.numLayers() - 1, cfg, 3, 4);
    EXPECT_EQ(it4.colt - it.colt, cfg.sx);
}

TEST(CalcParams, AgreesWithTilePlanEverywhere)
{
    // The paper's formulas and the TilePlan's compute spans must agree
    // at every pyramid of a clip-free fusion: same computation dims
    // per windowed layer, and load coordinates offset by exactly the
    // K-S overlap our layer-1 reuse buffers retain.
    Network net = cleanNet();
    const int last = net.numLayers() - 1;
    CalcParamsConfig cfg = deriveCalcParams(net, 0, last);
    TilePlan plan(net, 0, last, 1, 1);

    int k1 = net.layer(0).kernel, s1 = net.layer(0).stride;
    for (int r = 0; r < plan.numPyramidRows(); r++) {
        for (int c = 0; c < plan.numPyramidCols(); c++) {
            IterationParams it = calcParams(net, 0, last, cfg, r, c);
            size_t wi = 0;
            for (int li = 0; li < plan.numFusedLayers(); li++) {
                const LayerGeom &g = plan.geom(li);
                if (!g.windowed)
                    continue;
                const LayerParams &lp = it.layers[wi++];
                EXPECT_EQ(lp.inW, g.inX[static_cast<size_t>(c)].width())
                    << "layer " << li << " @(" << r << "," << c << ")";
                EXPECT_EQ(lp.inH, g.inY[static_cast<size_t>(r)].width())
                    << "layer " << li << " @(" << r << "," << c << ")";
                EXPECT_EQ(lp.outW, g.freshOutX(c).width())
                    << "layer " << li << " @(" << r << "," << c << ")";
                EXPECT_EQ(lp.outH, g.freshOutY(r).width())
                    << "layer " << li << " @(" << r << "," << c << ")";
            }
            // colt/rowt point at the fresh data minus the K-S overlap
            // the paper's design re-reads from DRAM.
            const LayerGeom &g0 = plan.geom(0);
            if (c > 0) {
                EXPECT_EQ(it.colt,
                          g0.freshInX(c).begin - (k1 - s1));
            }
            if (r > 0) {
                EXPECT_EQ(it.rowt,
                          g0.freshInY(r).begin - (k1 - s1));
            }
        }
    }
}

TEST(CalcParams, StridedFirstLayer)
{
    // AlexNet-style stride-4 head: Sx is the stride product.
    Network net("str", Shape{3, 51, 51});
    net.add(LayerSpec::conv("c1", 4, 11, 4));  // 11
    net.add(LayerSpec::conv("c2", 3, 3, 1));   // 9
    CalcParamsConfig cfg = deriveCalcParams(net, 0, 1);
    EXPECT_EQ(cfg.sx, 4);
    EXPECT_EQ(cfg.x, 4 * 3 + 11 - 4);  // 19
    IterationParams mid = calcParams(net, 0, 1, cfg, 2, 2);
    EXPECT_EQ(mid.layers[0].inW, 4 + 11 - 4);
    EXPECT_EQ(mid.layers[0].outW, 1);

    TilePlan plan(net, 0, 1, 1, 1);
    EXPECT_EQ(plan.geom(0).inX[2].width(), mid.layers[0].inW);
}

TEST(CalcParamsDeath, NoWindowedLayersIsAnError)
{
    Network net("pw", Shape{2, 8, 8});
    net.add(LayerSpec::relu("r"));
    CalcParamsConfig cfg{4, 4, 1, 1};
    EXPECT_DEATH(calcParams(net, 0, 0, cfg, 0, 0), "no windowed");
}

} // namespace
} // namespace flcnn
