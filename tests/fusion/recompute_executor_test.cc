/**
 * @file
 * RecomputeExecutor: functional equivalence with the reference, and the
 * recompute-vs-reuse arithmetic relationship the paper's Section III-C
 * analysis rests on (DESIGN.md invariant 7).
 */

#include <gtest/gtest.h>

#include "fusion/fused_executor.hh"
#include "fusion/recompute_executor.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

struct RunResult
{
    Tensor out;
    RecomputeRunStats stats;
};

RunResult
runRecompute(const Network &net, int first, int last, uint64_t seed,
             int tip = 1)
{
    Rng wrng(seed);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inShape(first));
    Rng irng(seed ^ 0x77);
    input.fillRandom(irng);

    RecomputeExecutor exec(net, weights, TilePlan(net, first, last, tip,
                                                  tip));
    RunResult res{Tensor{}, {}};
    res.out = exec.run(input, &res.stats);

    Tensor ref = runRange(net, weights, input, first, last);
    CompareResult cmp = compareTensors(ref, res.out);
    EXPECT_TRUE(cmp.match) << net.name() << ": " << cmp.str();
    return res;
}

TEST(RecomputeExecutor, MatchesReferenceTwoConv)
{
    runRecompute(tinyNet(), 0, 1, 31);
}

TEST(RecomputeExecutor, MatchesReferenceWithPadPoolRelu)
{
    Network net("mix", Shape{3, 20, 20});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c2", 5, 3, 1, 1);
    runRecompute(net, 0, net.numLayers() - 1, 32);
}

TEST(RecomputeExecutor, MatchesReferenceWithLrn)
{
    Network net("lrn", Shape{6, 10, 10});
    net.add(LayerSpec::conv("c1", 6, 3, 1));
    net.add(LayerSpec::lrn("n1"));
    net.add(LayerSpec::conv("c2", 3, 3, 1));
    runRecompute(net, 0, 2, 33);
}

TEST(RecomputeExecutor, ArithmeticBlowupVsReuse)
{
    // Fusing two 3x3/s1 convs with a 1x1 tip recomputes each
    // intermediate point for every pyramid whose base contains it
    // (up to K*K = 9 times); total mult-adds must far exceed the
    // reference while the reuse executor performs exactly the
    // reference amount.
    Network net("blowup", Shape{2, 16, 16});
    net.add(LayerSpec::conv("c1", 3, 3, 1));
    net.add(LayerSpec::conv("c2", 3, 3, 1));

    OpCount ref_ops = rangeOpCount(net, 0, 1);
    RunResult rec = runRecompute(net, 0, 1, 34);

    Rng wrng(34);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(34 ^ 0x77);
    input.fillRandom(irng);
    FusedExecutor fused(net, weights, TilePlan(net, 0, 1, 1, 1));
    FusedRunStats fstats;
    fused.run(input, &fstats);

    // The reuse model performs the baseline work exactly (paper:
    // "the amount of computation performed by the reuse-model
    // fused-layer accelerator and the baseline accelerator are
    // identical").
    EXPECT_EQ(fstats.ops.mults, ref_ops.mults);
    EXPECT_EQ(fstats.ops.adds, ref_ops.adds);

    // The recompute model repeats layer-1 work; interior points are
    // computed 9 times.
    EXPECT_GT(rec.stats.ops.multAdds(), 3 * ref_ops.multAdds());
    EXPECT_LT(rec.stats.ops.multAdds(), 10 * ref_ops.multAdds());
}

TEST(RecomputeExecutor, WiderTipReducesRecomputation)
{
    Network net("tip", Shape{2, 20, 20});
    net.add(LayerSpec::conv("c1", 3, 3, 1));
    net.add(LayerSpec::conv("c2", 3, 3, 1));

    RunResult tip1 = runRecompute(net, 0, 1, 35, 1);
    RunResult tip4 = runRecompute(net, 0, 1, 35, 4);
    EXPECT_LT(tip4.stats.ops.multAdds(), tip1.stats.ops.multAdds());
}

TEST(RecomputeExecutor, ReloadsOverlappingInput)
{
    // Recompute re-reads the base-tile overlap from DRAM; reuse loads
    // each input element exactly once.
    Network net("reload", Shape{2, 14, 14});
    net.add(LayerSpec::conv("c1", 3, 3, 1));
    net.add(LayerSpec::conv("c2", 3, 3, 1));
    RunResult rec = runRecompute(net, 0, 1, 36);
    EXPECT_GT(rec.stats.loadedBytes, net.inputShape().bytes());

    TilePlan plan(net, 0, 1, 1, 1);
    EXPECT_EQ(plan.inputBytesLoaded(), net.inputShape().bytes());
}

class RecomputeRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(RecomputeRandom, MatchesReferenceOnRandomNetworks)
{
    const uint64_t seed = static_cast<uint64_t>(GetParam());
    Rng rng(seed * 31337 + 5);
    Network net = randomFusableNet(rng);
    runRecompute(net, 0, net.numLayers() - 1, seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecomputeRandom, ::testing::Range(0, 25));

} // namespace
} // namespace flcnn
