/**
 * @file
 * FusionPlan compile/execute contract tests.
 *
 * Two contracts dominate: every declaration error is a *typed*
 * CompileStatus (never an assert, never UB), and a rejected compile
 * never routes anywhere — no silent reference fallback, proven here by
 * the "plan" metrics scope (compile_rejected increments, executes stays
 * zero, silent_fallbacks stays zero). Execution, once pinned, is
 * bit-exact against nn::runRange at every engine x precision.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "fusion/fusion_plan.hh"
#include "nn/precision.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "obs/metrics.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

/** Small conv/pool/relu chain with enough structure to exercise every
 *  engine quickly. */
Network
smallChain()
{
    Network net("plan-chain", Shape{3, 20, 20});
    net.addConvBlock("conv1", 8, 3, 1, 1);
    net.addMaxPool("pool1", 2, 2);
    net.addConvBlock("conv2", 12, 3, 1, 1);
    return net;
}

/** Conv followed by a fully-connected head: the FC is fine for the
 *  Reference engine but outside every fused engine's table. */
Network
convFcNet()
{
    Network net("conv-fc", Shape{2, 6, 6});
    net.add(LayerSpec::conv("c", 4, 3, 1));
    net.add(LayerSpec::relu("r"));
    net.add(LayerSpec::fullyConnected("fc", 10));
    return net;
}

TEST(FusionPlan, CompileExecuteMatchesRunRangeEveryEngine)
{
    Network net = smallChain();
    Rng wrng(5);
    NetworkWeights w(net, wrng);
    Tensor in(net.inputShape());
    Rng irng(6);
    in.fillRandom(irng);
    const int last = net.numLayers() - 1;
    Tensor golden = runRange(net, w, in, 0, last);

    for (PlanEngine e : {PlanEngine::Reference, PlanEngine::Fused,
                         PlanEngine::LineBuffer, PlanEngine::Recompute}) {
        SCOPED_TRACE(planEngineName(e));
        FusionPlan plan(net, w);
        plan.addRange(0, last);
        PlanCompileOptions opt;
        opt.engine = e;
        ASSERT_EQ(plan.compile(opt), CompileStatus::Ok)
            << plan.diagnostic();
        EXPECT_TRUE(plan.compiled());
        EXPECT_EQ(plan.engine(), e);
        EXPECT_EQ(plan.inShape(), net.inputShape());
        EXPECT_EQ(plan.outShape(), net.outputShape());
        EXPECT_GE(plan.compileSeconds(), 0.0);
        // Both conv layers resolved through the solver registry.
        ASSERT_EQ(plan.solvers().size(), 2u);
        EXPECT_EQ(plan.solvers()[0].substr(0, 2),
                  std::to_string(net.convLayers()[0]) + ":");

        // Execute-many: repeated runs stay bit-exact.
        for (int rep = 0; rep < 3; rep++) {
            Tensor out = plan.execute(in);
            EXPECT_TRUE(tensorsEqual(golden, out))
                << "rep " << rep << " diverged";
        }
        if (e != PlanEngine::Reference) {
            EXPECT_TRUE(plan.producesInto());
            Tensor out(plan.outShape());
            plan.executeInto(in, &out);
            EXPECT_TRUE(tensorsEqual(golden, out));
        } else {
            EXPECT_FALSE(plan.producesInto());
        }
    }
}

TEST(FusionPlan, CompileExecuteMatchesRunRangeEveryPrecision)
{
    Network net = smallChain();
    Rng wrng(7);
    NetworkWeights w(net, wrng);
    Tensor in(net.inputShape());
    Rng irng(8);
    in.fillRandom(irng);
    const int last = net.numLayers() - 1;

    for (Precision mode :
         {Precision::Fp32, Precision::Int8, Precision::Fp16}) {
        const NetPrecision prec = NetPrecision::calibrate(net, w, mode);
        Tensor golden = runRange(net, w, in, 0, last, &prec);
        for (PlanEngine e : {PlanEngine::Fused, PlanEngine::LineBuffer,
                             PlanEngine::Recompute}) {
            SCOPED_TRACE(std::string(precisionName(mode)) + " " +
                         planEngineName(e));
            FusionPlan plan(net, w);
            plan.addRange(0, last);
            PlanCompileOptions opt;
            opt.engine = e;
            opt.precision = &prec;
            ASSERT_EQ(plan.compile(opt), CompileStatus::Ok)
                << plan.diagnostic();
            EXPECT_TRUE(tensorsEqual(golden, plan.execute(in)));
        }
    }
}

TEST(FusionPlan, TypedStatusForEveryDeclarationError)
{
    Network net = smallChain();
    NetworkWeights w(net);
    PlanCompileOptions opt;

    {  // Empty op list: typed error, not an assert (satellite 2).
        FusionPlan plan(net, w);
        EXPECT_EQ(plan.compile(opt), CompileStatus::EmptyPlan);
        EXPECT_FALSE(plan.compiled());
        EXPECT_NE(plan.diagnostic().find("no ops"), std::string::npos);
    }
    {  // Out-of-range op index.
        FusionPlan plan(net, w);
        plan.addOp(99);
        EXPECT_EQ(plan.compile(opt), CompileStatus::InvalidOp);
    }
    {  // Duplicate op (satellite 2).
        FusionPlan plan(net, w);
        plan.addOp(0);
        plan.addOp(0);
        EXPECT_EQ(plan.compile(opt), CompileStatus::DuplicateOp);
        EXPECT_NE(plan.diagnostic().find("twice"), std::string::npos);
    }
    {  // Gap in the sequence.
        FusionPlan plan(net, w);
        plan.addOp(0);
        plan.addOp(2);
        EXPECT_EQ(plan.compile(opt), CompileStatus::NonContiguousOp);
    }
    {  // Descending order is also non-contiguous.
        FusionPlan plan(net, w);
        plan.addOp(1);
        plan.addOp(0);
        EXPECT_EQ(plan.compile(opt), CompileStatus::NonContiguousOp);
    }
    {  // Non-positive pyramid tip.
        FusionPlan plan(net, w);
        plan.addOp(0);
        PlanCompileOptions bad = opt;
        bad.tip = 0;
        EXPECT_EQ(plan.compile(bad), CompileStatus::UnsupportedSequence);
    }
}

TEST(FusionPlan, MultiInputJoinIsTypedRejection)
{
    Network net = residualBlock();
    NetworkWeights w(net);
    FusionPlan plan(net, w);
    plan.addRange(0, net.numLayers() - 1);  // crosses the Add join
    PlanCompileOptions opt;
    EXPECT_EQ(plan.compile(opt), CompileStatus::MultiInputOp);
    EXPECT_NE(plan.diagnostic().find("join"), std::string::npos);
    EXPECT_FALSE(plan.compiled());
}

TEST(FusionPlan, FanOutEscapeIsTypedRejection)
{
    // inceptionJoin's stem fans out to both branches; a range ending
    // between them leaks an intermediate, which no pyramid can keep
    // unmaterialized.
    Network net = inceptionJoin();
    NetworkWeights w(net);
    FusionPlan plan(net, w);
    plan.addRange(0, 2);
    PlanCompileOptions opt;
    EXPECT_EQ(plan.compile(opt), CompileStatus::UnsupportedSequence);

    // The branch interior itself is a clean path and compiles.
    FusionPlan branch(net, w);
    branch.addRange(1, 2);
    EXPECT_EQ(branch.compile(opt), CompileStatus::Ok)
        << branch.diagnostic();
}

TEST(FusionPlan, FullyConnectedOnlyOnReferenceEngine)
{
    Network net = convFcNet();
    Rng rng(9);
    NetworkWeights w(net, rng);
    PlanCompileOptions opt;

    // Every fused engine rejects the FC with a typed status...
    for (PlanEngine e : {PlanEngine::Fused, PlanEngine::LineBuffer,
                         PlanEngine::Recompute}) {
        SCOPED_TRACE(planEngineName(e));
        FusionPlan plan(net, w);
        plan.addRange(0, net.numLayers() - 1);
        PlanCompileOptions fused_opt = opt;
        fused_opt.engine = e;
        EXPECT_EQ(plan.compile(fused_opt), CompileStatus::UnsupportedOp);
        EXPECT_FALSE(plan.compiled());
    }

    // ...while the Reference engine accepts it as an explicit choice.
    FusionPlan ref(net, w);
    ref.addRange(0, net.numLayers() - 1);
    PlanCompileOptions ref_opt = opt;
    ref_opt.engine = PlanEngine::Reference;
    ASSERT_EQ(ref.compile(ref_opt), CompileStatus::Ok);
    Tensor in(net.inputShape());
    Rng irng(10);
    in.fillRandom(irng);
    Tensor golden = runRange(net, w, in, 0, net.numLayers() - 1);
    EXPECT_TRUE(tensorsEqual(golden, ref.execute(in)));
}

TEST(FusionPlan, SecondCompileReturnsAlreadyCompiled)
{
    Network net = smallChain();
    NetworkWeights w(net);
    FusionPlan plan(net, w);
    plan.addRange(0, net.numLayers() - 1);
    PlanCompileOptions opt;
    ASSERT_EQ(plan.compile(opt), CompileStatus::Ok);
    EXPECT_EQ(plan.compile(opt), CompileStatus::AlreadyCompiled);
    // The pinned executor is unharmed by the rejected re-compile.
    EXPECT_TRUE(plan.compiled());
    Tensor in(net.inputShape());
    (void)plan.execute(in);
}

TEST(FusionPlan, CheckIsPureAndCompileMatchesIt)
{
    Network net = smallChain();
    NetworkWeights w(net);
    FusionPlan plan(net, w);
    plan.addRange(0, net.numLayers() - 1);
    PlanCompileOptions opt;
    EXPECT_EQ(plan.check(opt), CompileStatus::Ok);
    EXPECT_FALSE(plan.compiled());  // check() builds nothing
    EXPECT_TRUE(plan.solvers().empty());

    FusionPlan bad(net, w);
    bad.addOp(0);
    bad.addOp(2);
    EXPECT_EQ(bad.check(opt), bad.compile(opt));
}

TEST(FusionPlan, RejectedCompileNeverExecutesAndNeverFallsBack)
{
    // The no-silent-fallback contract, as CI asserts it: a rejected
    // compile bumps compile_rejected, executes stays zero, and the
    // silent_fallbacks counter exists and stays zero.
    Network net = convFcNet();
    NetworkWeights w(net);
    MetricsRegistry reg;
    FusionPlan plan(net, w);
    plan.addRange(0, net.numLayers() - 1);
    PlanCompileOptions opt;
    opt.engine = PlanEngine::Fused;
    opt.metrics = &reg;
    EXPECT_EQ(plan.compile(opt), CompileStatus::UnsupportedOp);

    EXPECT_EQ(reg.counter("plan", "compiles"), 1);
    EXPECT_EQ(reg.counter("plan", "compile_rejected"), 1);
    EXPECT_EQ(reg.counter("plan", "silent_fallbacks"), 0);
    EXPECT_EQ(reg.counter("plan", "executes"), 0);
    EXPECT_EQ(reg.counter("plan", "compile_ok"), 0);
}

TEST(FusionPlan, MetricsCountCompilesAndExecutes)
{
    Network net = smallChain();
    Rng rng(13);
    NetworkWeights w(net, rng);
    MetricsRegistry reg;

    FusionPlan plan(net, w);
    plan.addRange(0, net.numLayers() - 1);
    PlanCompileOptions opt;
    opt.engine = PlanEngine::LineBuffer;
    opt.metrics = &reg;
    ASSERT_EQ(plan.compile(opt), CompileStatus::Ok);
    // The pre-pack zero run counts as an execute.
    const int64_t prepack = reg.counter("plan", "executes");
    Tensor in(net.inputShape());
    (void)plan.execute(in);
    (void)plan.execute(in);
    EXPECT_EQ(reg.counter("plan", "compiles"), 1);
    EXPECT_EQ(reg.counter("plan", "compile_ok"), 1);
    EXPECT_EQ(reg.counter("plan", "reference_compiles"), 0);
    EXPECT_EQ(reg.counter("plan", "executes"), prepack + 2);
    EXPECT_GE(reg.gauge("plan", "compile_seconds"), 0.0);

    // Reference compiles are counted separately — choosing the
    // reference path is explicit, never a fallback.
    FusionPlan ref(net, w);
    ref.addRange(0, net.numLayers() - 1);
    PlanCompileOptions ropt;
    ropt.engine = PlanEngine::Reference;
    ropt.metrics = &reg;
    ASSERT_EQ(ref.compile(ropt), CompileStatus::Ok);
    EXPECT_EQ(reg.counter("plan", "reference_compiles"), 1);
}

TEST(FusionPlan, CopyClonesDeclarationNotCompiledState)
{
    Network net = smallChain();
    Rng rng(15);
    NetworkWeights w(net, rng);
    FusionPlan plan(net, w);
    plan.addRange(0, net.numLayers() - 1);
    PlanCompileOptions opt;
    ASSERT_EQ(plan.compile(opt), CompileStatus::Ok);

    FusionPlan copy(plan);
    EXPECT_EQ(copy.ops(), plan.ops());
    EXPECT_FALSE(copy.compiled());  // template copy starts uncompiled
    ASSERT_EQ(copy.compile(opt), CompileStatus::Ok);

    Tensor in(net.inputShape());
    Rng irng(16);
    in.fillRandom(irng);
    EXPECT_TRUE(tensorsEqual(plan.execute(in), copy.execute(in)));
}

TEST(FusionPlan, PlansSharingALayerDoNotAliasPackEntries)
{
    // Satellite 3 regression: the executors key their weight-pack
    // caches by *absolute* layer index and dtype, so two plans over
    // overlapping ranges — at different precisions — each keep their
    // own pack of the shared conv and stay bit-exact against their own
    // reference.
    Network net = smallChain();
    Rng wrng(17);
    NetworkWeights w(net, wrng);
    Tensor in(net.inputShape());
    Rng irng(18);
    in.fillRandom(irng);
    const int last = net.numLayers() - 1;
    const NetPrecision i8 =
        NetPrecision::calibrate(net, w, Precision::Int8);

    // Plan A: fp32 over the full range. Plan B: int8 over a suffix
    // sharing conv2 with A.
    const int suffix_first = net.convLayers()[1];
    FusionPlan a(net, w), b(net, w);
    a.addRange(0, last);
    b.addRange(suffix_first, last);
    PlanCompileOptions aopt, bopt;
    aopt.engine = PlanEngine::LineBuffer;
    bopt.engine = PlanEngine::LineBuffer;
    bopt.precision = &i8;
    ASSERT_EQ(a.compile(aopt), CompileStatus::Ok);
    ASSERT_EQ(b.compile(bopt), CompileStatus::Ok);

    Tensor golden_a = runRange(net, w, in, 0, last);
    Tensor mid = runRange(net, w, in, 0, suffix_first - 1);
    Tensor golden_b = runRange(net, w, mid, suffix_first, last, &i8);

    // Interleave executions so a shared/aliased pack entry would be
    // observed by the other plan.
    for (int rep = 0; rep < 3; rep++) {
        EXPECT_TRUE(tensorsEqual(golden_a, a.execute(in))) << rep;
        EXPECT_TRUE(tensorsEqual(golden_b, b.execute(mid))) << rep;
    }
}

TEST(FusionPlanDeath, ExecuteBeforeCompileIsFatal)
{
    Network net = smallChain();
    NetworkWeights w(net);
    FusionPlan plan(net, w);
    plan.addRange(0, net.numLayers() - 1);
    Tensor in(net.inputShape());
    EXPECT_EXIT((void)plan.execute(in), ::testing::ExitedWithCode(1),
                "before a successful compile");
}

TEST(FusionPlanDeath, ExecuteAfterRejectionReportsTheDiagnostic)
{
    Network net = convFcNet();
    NetworkWeights w(net);
    FusionPlan plan(net, w);
    plan.addRange(0, net.numLayers() - 1);
    PlanCompileOptions opt;
    opt.engine = PlanEngine::Fused;
    ASSERT_EQ(plan.compile(opt), CompileStatus::UnsupportedOp);
    Tensor in(net.inputShape());
    EXPECT_EXIT((void)plan.execute(in), ::testing::ExitedWithCode(1),
                "unsupported_op");
}

TEST(FusionPlanDeath, AddOpAfterCompileIsFatal)
{
    Network net = smallChain();
    NetworkWeights w(net);
    FusionPlan plan(net, w);
    plan.addRange(0, 0);
    PlanCompileOptions opt;
    ASSERT_EQ(plan.compile(opt), CompileStatus::Ok);
    EXPECT_DEATH(plan.addOp(1), "addOp");
}

} // namespace
} // namespace flcnn
