/**
 * @file
 * FusedExecutor correctness: bit-exact equivalence with the
 * layer-by-layer reference across hand-built and random networks, exact
 * single-computation coverage, and stats consistency with the plan
 * (DESIGN.md invariants 1, 3, 4).
 */

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "fusion/fused_executor.hh"
#include "fusion/plan.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

void
expectFusedMatchesReference(const Network &net, int first, int last,
                            int tip_h, int tip_w, uint64_t seed)
{
    Rng wrng(seed);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inShape(first));
    Rng irng(seed ^ 0xabcdef);
    input.fillRandom(irng);

    Tensor ref = runRange(net, weights, input, first, last);

    TilePlan plan(net, first, last, tip_h, tip_w);
    FusedExecutor exec(net, weights, std::move(plan));
    exec.setTrackCoverage(true);
    FusedRunStats stats;
    Tensor fused = exec.run(input, &stats);

    CompareResult cmp = compareTensors(ref, fused);
    EXPECT_TRUE(cmp.match)
        << net.name() << " layers [" << first << "," << last << "] tip "
        << tip_h << "x" << tip_w << ": " << cmp.str();
    EXPECT_EQ(exec.coverageReport(), "")
        << net.name() << " layers [" << first << "," << last << "]";

    // Stats consistency with the plan's analytic accounting.
    EXPECT_EQ(stats.loadedBytes, exec.plan().inputBytesLoaded());
    EXPECT_EQ(stats.storedBytes, exec.plan().outputBytesStored());
    EXPECT_EQ(stats.pyramids, exec.plan().numPyramids());
    EXPECT_EQ(stats.reuseBytes, exec.plan().reuseBufferBytes());
}

TEST(FusedExecutor, TwoConvNoPadTip1)
{
    // The paper's Figure 3 example: two 3x3 stride-1 convolutions over a
    // 7x7 input, 1x1 tip (one output pixel per pyramid).
    expectFusedMatchesReference(tinyNet(), 0, 1, 1, 1, 7);
}

TEST(FusedExecutor, TwoConvNoPadWideTip)
{
    expectFusedMatchesReference(tinyNet(), 0, 1, 3, 2, 8);
}

TEST(FusedExecutor, TipLargerThanOutput)
{
    // A tip covering the whole output degenerates to a single pyramid.
    expectFusedMatchesReference(tinyNet(), 0, 1, 16, 16, 9);
}

TEST(FusedExecutor, SingleLayerGroup)
{
    expectFusedMatchesReference(tinyNet(), 0, 0, 1, 1, 10);
    expectFusedMatchesReference(tinyNet(), 1, 1, 2, 2, 11);
}

TEST(FusedExecutor, ConvPoolConv)
{
    Network net("cpc", Shape{2, 20, 20});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::pool("p1", 2, 2));
    net.add(LayerSpec::conv("c2", 3, 3, 1));
    expectFusedMatchesReference(net, 0, 2, 1, 1, 12);
    expectFusedMatchesReference(net, 0, 2, 2, 3, 13);
}

TEST(FusedExecutor, OverlappingPool)
{
    // 3x3 stride-2 pooling (AlexNet style) has K - S = 1 overlap.
    Network net("ovp", Shape{3, 19, 19});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::relu("r1"));
    net.add(LayerSpec::pool("p1", 3, 2));
    net.add(LayerSpec::conv("c2", 5, 3, 1));
    expectFusedMatchesReference(net, 0, 3, 1, 1, 14);
}

TEST(FusedExecutor, PaddedConvs)
{
    Network net("padded", Shape{2, 12, 12});
    net.add(LayerSpec::padding("pad1", 1));
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::relu("r1"));
    net.add(LayerSpec::padding("pad2", 1));
    net.add(LayerSpec::conv("c2", 4, 3, 1));
    net.add(LayerSpec::relu("r2"));
    expectFusedMatchesReference(net, 0, 5, 1, 1, 15);
    expectFusedMatchesReference(net, 0, 5, 4, 4, 16);
}

TEST(FusedExecutor, StridedConv)
{
    Network net("strided", Shape{3, 23, 23});
    net.add(LayerSpec::conv("c1", 6, 5, 2));
    net.add(LayerSpec::relu("r1"));
    net.add(LayerSpec::conv("c2", 4, 3, 1));
    expectFusedMatchesReference(net, 0, 2, 1, 1, 17);
}

TEST(FusedExecutor, GroupedConv)
{
    Network net("grouped", Shape{4, 14, 14});
    net.add(LayerSpec::conv("c1", 6, 3, 1, 2));
    net.add(LayerSpec::conv("c2", 4, 3, 1, 2));
    expectFusedMatchesReference(net, 0, 1, 1, 1, 18);
}

TEST(FusedExecutor, LrnInsidePyramid)
{
    // The paper notes normalization integrates trivially as one more
    // pipeline stage; verify the executor agrees.
    Network net("lrn", Shape{6, 12, 12});
    net.add(LayerSpec::conv("c1", 6, 3, 1));
    net.add(LayerSpec::lrn("n1"));
    net.add(LayerSpec::conv("c2", 4, 3, 1));
    // LRN reassociates nothing; still exact.
    expectFusedMatchesReference(net, 0, 2, 1, 1, 19);
}

TEST(FusedExecutor, GroupStartsWithPool)
{
    Network net("poolfirst", Shape{3, 16, 16});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::pool("p1", 2, 2));
    net.add(LayerSpec::conv("c2", 5, 3, 1));
    // Fuse only [pool, conv]: the group head is a pooling layer.
    expectFusedMatchesReference(net, 1, 2, 1, 1, 20);
}

TEST(FusedExecutor, GroupStartsWithPad)
{
    Network net("padfirst", Shape{3, 10, 10});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::padding("pad", 2));
    net.add(LayerSpec::conv("c2", 5, 3, 1));
    expectFusedMatchesReference(net, 1, 2, 1, 1, 21);
}

TEST(FusedExecutor, GroupEndsWithPool)
{
    Network net("poollast", Shape{3, 18, 18});
    net.add(LayerSpec::conv("c1", 4, 5, 1));
    net.add(LayerSpec::relu("r1"));
    net.add(LayerSpec::pool("p1", 2, 2));
    expectFusedMatchesReference(net, 0, 2, 1, 1, 22);
    expectFusedMatchesReference(net, 0, 2, 3, 3, 23);
}

TEST(FusedExecutor, KernelOneConv)
{
    // GoogLeNet-style 1x1 convolutions: zero overlap everywhere.
    Network net("k1", Shape{4, 9, 9});
    net.add(LayerSpec::conv("c1", 8, 1, 1));
    net.add(LayerSpec::conv("c2", 4, 3, 1));
    net.add(LayerSpec::conv("c3", 2, 1, 1));
    expectFusedMatchesReference(net, 0, 2, 1, 1, 24);
}

TEST(FusedExecutor, NonDividingShapes)
{
    // (in - k) % s != 0 leaves unused tail rows/columns.
    Network net("ragged", Shape{2, 17, 13});
    net.add(LayerSpec::conv("c1", 3, 4, 3));
    net.add(LayerSpec::conv("c2", 2, 2, 1));
    expectFusedMatchesReference(net, 0, 1, 1, 1, 25);
    expectFusedMatchesReference(net, 0, 1, 2, 2, 26);
}

TEST(FusedExecutor, AvgPool)
{
    Network net("avg", Shape{3, 14, 14});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::pool("p1", 3, 2, PoolMode::Avg));
    net.add(LayerSpec::conv("c2", 3, 3, 1));
    expectFusedMatchesReference(net, 0, 2, 1, 1, 27);
}

TEST(FusedExecutor, AlexNetFusedPrefixSmallInput)
{
    // The paper's AlexNet fused group (conv1+pool1+conv2 with pad and
    // ReLU), shrunk spatially to keep the test fast but preserving all
    // kernel/stride/pad parameters.
    Network net("alex2-small", Shape{3, 59, 59});
    net.add(LayerSpec::conv("conv1", 8, 11, 4));
    net.add(LayerSpec::relu("relu1"));
    net.addMaxPool("pool1", 3, 2);
    net.add(LayerSpec::padding("conv2_pad", 2));
    net.add(LayerSpec::conv("conv2", 12, 5, 1, 2));
    net.add(LayerSpec::relu("relu2"));
    expectFusedMatchesReference(net, 0, 5, 1, 1, 28);
}

TEST(FusedExecutor, VggStylePrefixSmallInput)
{
    // VGG-style: two padded 3x3 convs, 2x2/s2 pool, two more convs —
    // the shape of the paper's five-conv fusion at reduced width.
    Network net("vgg-small", Shape{3, 36, 36});
    net.addConvBlock("c11", 4, 3, 1, 1);
    net.addConvBlock("c12", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c21", 6, 3, 1, 1);
    net.addConvBlock("c22", 6, 3, 1, 1);
    net.addMaxPool("p2", 2, 2);
    net.addConvBlock("c31", 8, 3, 1, 1);
    expectFusedMatchesReference(net, 0, net.numLayers() - 1, 1, 1, 29);
}

TEST(FusedExecutor, InteriorGroup)
{
    // Fusing a group that neither starts at the network input nor ends
    // at its output.
    Network net("interior", Shape{3, 24, 24});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::conv("c2", 5, 3, 1));
    net.add(LayerSpec::pool("p1", 2, 2));
    net.add(LayerSpec::conv("c3", 6, 3, 1));
    net.add(LayerSpec::conv("c4", 2, 3, 1));

    Rng wrng(77);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(78);
    input.fillRandom(irng);

    // Reference through layer 0, then fused [1..3], then reference 4.
    Tensor l0 = runRange(net, weights, input, 0, 0);
    Tensor ref = runRange(net, weights, l0, 1, 3);

    FusedExecutor exec(net, weights, TilePlan(net, 1, 3, 1, 1));
    Tensor fused = exec.run(l0);
    EXPECT_TRUE(tensorsEqual(ref, fused));
}

/** RAII: run a scope at a fixed global thread count, then restore the
 *  default so other tests are unaffected. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(int n) { ThreadPool::setGlobalThreads(n); }
    ~ScopedThreads() { ThreadPool::setGlobalThreads(0); }
};

TEST(FusedExecutor, BitExactAcrossThreadCounts)
{
    // The pyramid executor threads each window's conv and pool stages
    // across filter blocks and rows; disjoint writes plus the blocked
    // kernel's private accumulators make the output invariant to the
    // pool width — bitwise, against a serial reference.
    Network net("vgg-threads", Shape{3, 36, 36});
    net.addConvBlock("c11", 5, 3, 1, 1);
    net.addConvBlock("c12", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c21", 6, 3, 1, 1);

    Rng wrng(91);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(92);
    input.fillRandom(irng);

    Tensor ref;
    {
        ScopedThreads serial(1);
        ref = runRange(net, weights, input, 0, net.numLayers() - 1);
    }
    for (int threads : {1, 2, 8}) {
        ScopedThreads scope(threads);
        FusedExecutor exec(
            net, weights,
            TilePlan(net, 0, net.numLayers() - 1, 4, 4));
        Tensor fused = exec.run(input);
        CompareResult cmp = compareTensors(ref, fused);
        ASSERT_TRUE(cmp.match)
            << "threads=" << threads << ": " << cmp.str();
    }
}

class FusedExecutorRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(FusedExecutorRandom, MatchesReferenceOnRandomNetworks)
{
    const uint64_t seed = static_cast<uint64_t>(GetParam());
    Rng rng(seed * 7919 + 13);
    Network net = randomFusableNet(rng);
    const int last = net.numLayers() - 1;

    // Random tip size as well.
    int tip_h = rng.range(1, 4);
    int tip_w = rng.range(1, 4);
    expectFusedMatchesReference(net, 0, last, tip_h, tip_w, seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedExecutorRandom,
                         ::testing::Range(0, 60));

class FusedExecutorRandomSubrange : public ::testing::TestWithParam<int>
{
};

TEST_P(FusedExecutorRandomSubrange, MatchesReferenceOnRandomSubranges)
{
    const uint64_t seed = static_cast<uint64_t>(GetParam());
    Rng rng(seed * 104729 + 7);
    Network net = randomFusableNet(rng);

    // Pick a random fusable stage-aligned subrange.
    const auto &stages = net.stages();
    if (stages.empty())
        GTEST_SKIP() << "degenerate random network";
    int s0 = rng.range(0, static_cast<int>(stages.size()) - 1);
    int s1 = rng.range(s0, static_cast<int>(stages.size()) - 1);
    int first = stages[static_cast<size_t>(s0)].first;
    int last = stages[static_cast<size_t>(s1)].last;

    Rng wrng(seed);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(seed ^ 0x5555);
    input.fillRandom(irng);

    Tensor head = (first == 0)
                      ? input
                      : runRange(net, weights, input, 0, first - 1);
    Tensor ref = runRange(net, weights, head, first, last);

    FusedExecutor exec(net, weights, TilePlan(net, first, last, 1, 1));
    exec.setTrackCoverage(true);
    Tensor fused = exec.run(head);
    CompareResult cmp = compareTensors(ref, fused);
    EXPECT_TRUE(cmp.match) << net.str() << "range [" << first << ","
                           << last << "]: " << cmp.str();
    EXPECT_EQ(exec.coverageReport(), "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, FusedExecutorRandomSubrange,
                         ::testing::Range(0, 40));

} // namespace
} // namespace flcnn
