/**
 * @file
 * TilePlan geometry: the backward pyramid recursion, overlap widths,
 * buffer sizing, and DRAM load accounting (DESIGN.md invariant 2).
 */

#include <gtest/gtest.h>

#include "common/mathutil.hh"
#include "fusion/plan.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(TilePlan, PaperFigure3Geometry)
{
    // Figure 3: 7x7 inputs, two 3x3 stride-1 convolutions, 1x1 tip.
    // The pyramid base is 5x5 and the intermediate region is 3x3.
    Network net = tinyNet();
    TilePlan plan(net, 0, 1, 1, 1);

    ASSERT_EQ(plan.numFusedLayers(), 2);
    const LayerGeom &l1 = plan.geom(0);
    const LayerGeom &l2 = plan.geom(1);

    EXPECT_EQ(l1.maxTileH, 5);
    EXPECT_EQ(l1.maxTileW, 5);
    EXPECT_EQ(l2.maxTileH, 3);
    EXPECT_EQ(l2.maxTileW, 3);

    // Final output is 3x3; one pyramid per output pixel.
    EXPECT_EQ(plan.numPyramidRows(), 3);
    EXPECT_EQ(plan.numPyramidCols(), 3);

    // Both layers overlap by K - S = 2 between adjacent pyramids.
    EXPECT_EQ(l1.overlapX, 2);
    EXPECT_EQ(l1.overlapY, 2);
    EXPECT_EQ(l2.overlapX, 2);
    EXPECT_EQ(l2.overlapY, 2);
}

TEST(TilePlan, ScalarRecursionMatchesPaperFormula)
{
    // D' = S*D + K - S composed over an unpadded conv stack must equal
    // the first-tile size when no clipping interferes.
    Network net("stack", Shape{1, 120, 120});
    net.add(LayerSpec::conv("a", 2, 5, 2));
    net.add(LayerSpec::conv("b", 2, 3, 1));
    net.add(LayerSpec::conv("c", 2, 4, 3));

    TilePlan plan(net, 0, 2, 1, 1);
    int64_t d = 1;
    d = windowSpan(d, 4, 3);  // layer c
    d = windowSpan(d, 3, 1);  // layer b
    d = windowSpan(d, 5, 2);  // layer a
    EXPECT_EQ(plan.geom(0).maxTileH, d);
    EXPECT_EQ(plan.geom(0).maxTileW, d);
}

TEST(TilePlan, SpansArePlaneExact)
{
    // Union of output spans covers the full output plane; spans at each
    // boundary stay inside the plane.
    Network net("cover", Shape{2, 30, 30});
    net.add(LayerSpec::padding("p", 1));
    net.add(LayerSpec::conv("c1", 3, 3, 1));
    net.add(LayerSpec::pool("pl", 2, 2));
    net.add(LayerSpec::conv("c2", 2, 3, 1));
    TilePlan plan(net, 0, 3, 2, 2);

    for (int li = 0; li < plan.numFusedLayers(); li++) {
        const LayerGeom &g = plan.geom(li);
        for (const Span &s : g.inX) {
            EXPECT_GE(s.begin, 0);
            EXPECT_LE(s.end, g.inPlane.w);
        }
        for (const Span &s : g.inY) {
            EXPECT_GE(s.begin, 0);
            EXPECT_LE(s.end, g.inPlane.h);
        }
    }

    // Tip spans tile the group output exactly.
    const LayerGeom &gl = plan.geom(plan.numFusedLayers() - 1);
    int covered = 0;
    for (int c = 0; c < plan.numPyramidCols(); c++)
        covered += gl.freshOutX(c).width();
    EXPECT_EQ(covered, gl.outPlane.w);
    covered = 0;
    for (int r = 0; r < plan.numPyramidRows(); r++)
        covered += gl.freshOutY(r).width();
    EXPECT_EQ(covered, gl.outPlane.h);
}

TEST(TilePlan, PaddingClipsFullSpansAtBorders)
{
    // With a leading pad, pyramid 0's clipped receptive span is narrower
    // than the interior ones; maxFullInW must reflect the interior
    // width, while the compute spans shrink to the fresh sliver.
    Network net("clip", Shape{1, 16, 16});
    net.add(LayerSpec::padding("p", 1));
    net.add(LayerSpec::conv("c", 1, 3, 1));
    TilePlan plan(net, 0, 1, 1, 1);
    const LayerGeom &pad = plan.geom(0);
    EXPECT_EQ(pad.fullInX[0].width(), 2);  // clipped at the left border
    EXPECT_EQ(pad.fullInX[1].width(), 3);  // interior receptive field
    EXPECT_EQ(pad.maxFullInW, 3);
    // Compute spans: the first pyramid produces its whole clipped span;
    // interior pyramids produce a single fresh column.
    EXPECT_EQ(pad.inX[0].width(), 2);
    EXPECT_EQ(pad.inX[1].width(), 1);
    // Fresh-in diffs partition the used input region.
    int covered = 0;
    for (int c = 0; c < plan.numPyramidCols(); c++)
        covered += pad.freshInX(c).width();
    EXPECT_EQ(covered, 16);
}

TEST(TilePlan, ReuseBytesMatchHandComputation)
{
    // Single 3x3/s1 conv over CxHxW: BL = C*tileH*(K-S)*4,
    // BT = C*(K-S)*W*4.
    Network net("one", Shape{4, 10, 10});
    net.add(LayerSpec::conv("c", 2, 3, 1));
    TilePlan plan(net, 0, 0, 1, 1);
    const LayerGeom &g = plan.geom(0);
    EXPECT_EQ(g.maxTileH, 3);
    EXPECT_EQ(g.blBytes(), 4 * 3 * 2 * 4);
    EXPECT_EQ(g.btBytes(), 4 * 2 * 10 * 4);
    EXPECT_EQ(plan.reuseBufferBytes(), g.blBytes() + g.btBytes());
}

TEST(TilePlan, NoReuseBuffersWhenWindowsDoNotOverlap)
{
    // 2x2 stride-2 pooling: K - S = 0, so no BL/BT at that layer.
    Network net("nopool", Shape{2, 12, 12});
    net.add(LayerSpec::conv("c", 2, 3, 1));
    net.add(LayerSpec::pool("p", 2, 2));
    TilePlan plan(net, 0, 1, 1, 1);
    EXPECT_GT(plan.geom(0).blBytes(), 0);
    EXPECT_EQ(plan.geom(1).blBytes(), 0);
    EXPECT_EQ(plan.geom(1).btBytes(), 0);
}

TEST(TilePlan, InputLoadedOnceEqualsUsedRegion)
{
    // Shapes that divide exactly: every input element is used, so the
    // reuse model loads exactly the input plane.
    Network net("exact", Shape{3, 12, 12});
    net.add(LayerSpec::conv("c1", 2, 3, 1));
    net.add(LayerSpec::conv("c2", 2, 3, 1));
    TilePlan plan(net, 0, 1, 1, 1);
    EXPECT_EQ(plan.inputBytesLoaded(), net.inputShape().bytes());
}

TEST(TilePlan, InputLoadSkipsUnusedTail)
{
    // Stride-3 kernel-2 conv on width 13: outputs cover 2+3*(o-1)..,
    // leaving unused input columns that are never transferred.
    Network net("tail", Shape{1, 13, 13});
    net.add(LayerSpec::conv("c", 1, 2, 3));
    TilePlan plan(net, 0, 0, 1, 1);
    // outW = (13-2)/3+1 = 4 outputs; used columns 0..10 (11 of 13), and
    // the stride gap columns ARE loaded only when a window covers them.
    // Used columns per row: windows at x=0,3,6,9 each 2 wide -> 8 cols.
    int64_t expect = 8LL * 8 * 1 * 4;  // cols * rows * channels * bytes
    EXPECT_EQ(plan.inputBytesLoaded(), expect);
}

TEST(TilePlan, VggFirstFiveReuseStorageNearPaperValue)
{
    // The paper's point C: fusing VGG-E's first five convolution stages
    // (+2 pools) needs ~362 KB of extra on-chip storage. Our BL+BT
    // accounting should land in the same range.
    Network net = vggEPrefix(5);
    TilePlan plan(net, 0, net.numLayers() - 1, 1, 1);
    double kib = static_cast<double>(plan.reuseBufferBytes()) / 1024.0;
    EXPECT_GT(kib, 290.0);
    EXPECT_LT(kib, 440.0);
}

TEST(TilePlan, VggFirstFiveTransfersMatchPaper)
{
    // Point C transfers only the input (0.57 MB) and the conv3_1 output
    // (3.06 MB): 3.64 MB total.
    Network net = vggEPrefix(5);
    TilePlan plan(net, 0, net.numLayers() - 1, 1, 1);
    int64_t total = plan.inputBytesLoaded() + plan.outputBytesStored();
    double mib = static_cast<double>(total) / (1024.0 * 1024.0);
    EXPECT_NEAR(mib, 3.64, 0.05);
}

TEST(TilePlan, RejectsNonFusableLayer)
{
    Network net("fc", Shape{2, 8, 8});
    net.add(LayerSpec::conv("c", 2, 3, 1));
    net.add(LayerSpec::fullyConnected("f", 10));
    EXPECT_DEATH(TilePlan(net, 0, 1, 1, 1), "cannot be fused");
}

TEST(TilePlan, PyramidGridCountsRaggedTips)
{
    Network net("rag", Shape{1, 11, 11});
    net.add(LayerSpec::conv("c", 1, 3, 1));  // out 9x9
    TilePlan plan(net, 0, 0, 2, 4);
    EXPECT_EQ(plan.numPyramidRows(), 5);  // ceil(9/2)
    EXPECT_EQ(plan.numPyramidCols(), 3);  // ceil(9/4)
    EXPECT_EQ(plan.numPyramids(), 15);
}

} // namespace
} // namespace flcnn
