/**
 * @file
 * LineBufferExecutor: bit-exact equivalence with the reference and with
 * the pyramid executor, plus line-buffer capacity accounting.
 */

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "fusion/fused_executor.hh"
#include "fusion/line_buffer_executor.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

void
expectLineBufferMatches(const Network &net, int first, int last,
                        uint64_t seed, int row_block = 1)
{
    Rng wrng(seed);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inShape(first));
    Rng irng(seed ^ 0xbeef);
    input.fillRandom(irng);

    Tensor ref = runRange(net, weights, input, first, last);
    LineBufferExecutor exec(net, weights, first, last, row_block);
    LineBufferStats stats;
    Tensor out = exec.run(input, &stats);

    CompareResult cmp = compareTensors(ref, out);
    EXPECT_TRUE(cmp.match)
        << net.name() << " block " << row_block << ": " << cmp.str();
    EXPECT_EQ(stats.loadedBytes, net.inShape(first).bytes());
    EXPECT_EQ(stats.storedBytes, net.outShape(last).bytes());
}

TEST(LineBufferExecutor, TwoConv)
{
    expectLineBufferMatches(tinyNet(), 0, 1, 41);
}

TEST(LineBufferExecutor, PadConvReluPoolStack)
{
    Network net("stack", Shape{3, 22, 22});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 3, 2);
    net.addConvBlock("c2", 5, 3, 1, 2);
    expectLineBufferMatches(net, 0, net.numLayers() - 1, 42);
}

TEST(LineBufferExecutor, StridedAndGrouped)
{
    Network net("sg", Shape{4, 25, 25});
    net.add(LayerSpec::conv("c1", 6, 5, 2, 2));
    net.add(LayerSpec::relu("r1"));
    net.add(LayerSpec::conv("c2", 4, 3, 1));
    expectLineBufferMatches(net, 0, 2, 43);
}

TEST(LineBufferExecutor, LrnStage)
{
    Network net("lrn", Shape{6, 12, 12});
    net.add(LayerSpec::conv("c1", 6, 3, 1));
    net.add(LayerSpec::lrn("n1"));
    net.add(LayerSpec::conv("c2", 3, 3, 1));
    expectLineBufferMatches(net, 0, 2, 44);
}

TEST(LineBufferExecutor, AvgPool)
{
    Network net("avg", Shape{2, 15, 15});
    net.add(LayerSpec::conv("c1", 3, 3, 1));
    net.add(LayerSpec::pool("p1", 3, 2, PoolMode::Avg));
    expectLineBufferMatches(net, 0, 1, 45);
}

TEST(LineBufferExecutor, BufferBytesAreKRowsPerWindowedLayer)
{
    Network net("bytes", Shape{3, 18, 18});
    net.add(LayerSpec::conv("c1", 4, 3, 1));  // ring 3 rows x 18 x 3ch
    net.add(LayerSpec::pool("p1", 2, 2));     // ring 2 rows x 16 x 4ch
    Rng rng(1);
    NetworkWeights weights(net, rng);
    LineBufferExecutor exec(net, weights, 0, 1);
    int64_t expect = (3LL * 3 * 18 + 4LL * 2 * 16) * 4;
    EXPECT_EQ(exec.bufferBytes(), expect);
}

TEST(LineBufferExecutor, AgreesWithPyramidExecutor)
{
    Network net("agree", Shape{3, 21, 21});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 3, 2);
    net.addConvBlock("c2", 6, 3, 1, 1);

    Rng wrng(46);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(47);
    input.fillRandom(irng);

    LineBufferExecutor lb(net, weights, 0, net.numLayers() - 1);
    FusedExecutor py(net, weights,
                     TilePlan(net, 0, net.numLayers() - 1, 1, 1));
    Tensor a = lb.run(input);
    Tensor b = py.run(input);
    EXPECT_TRUE(tensorsEqual(a, b));
}

TEST(LineBufferExecutor, RowBlockingStaysExact)
{
    Network net("blk", Shape{3, 23, 23});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 3, 2);
    net.addConvBlock("c2", 6, 3, 1, 1);
    for (int block : {1, 2, 3, 4, 7, 32})
        expectLineBufferMatches(net, 0, net.numLayers() - 1, 48, block);
}

TEST(LineBufferExecutor, RowBlockingStridedAndRagged)
{
    Network net("blkrag", Shape{2, 29, 25});
    net.add(LayerSpec::conv("c1", 4, 5, 2));
    net.add(LayerSpec::conv("c2", 3, 2, 1));
    for (int block : {2, 3, 5})
        expectLineBufferMatches(net, 0, 1, 49, block);
}

TEST(LineBufferExecutor, RowBlockingGrowsBuffers)
{
    Network net("blkbuf", Shape{3, 18, 18});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    Rng rng(1);
    NetworkWeights weights(net, rng);
    LineBufferExecutor one(net, weights, 0, 0, 1);
    LineBufferExecutor four(net, weights, 0, 0, 4);
    // ring rows: K vs (B-1)*S + K.
    EXPECT_EQ(one.bufferBytes(), 3LL * 3 * 18 * 4);
    EXPECT_EQ(four.bufferBytes(), 3LL * 6 * 18 * 4);
}

/** RAII: run a scope at a fixed global thread count, then restore the
 *  default so other tests are unaffected. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(int n) { ThreadPool::setGlobalThreads(n); }
    ~ScopedThreads() { ThreadPool::setGlobalThreads(0); }
};

TEST(LineBufferExecutor, DifferentialSweepBitExactAcrossThreadCounts)
{
    // The determinism contract of the thread pool, proven end to end:
    // a Pad -> Conv -> ReLU -> LRN -> Pool chain over the full
    // stride / kernel / row-block grid produces outputs bit-identical
    // to the single-threaded reference at every thread count.
    const int hw = ThreadPool::defaultThreads();
    uint64_t seed = 0;
    for (int stride : {1, 2, 4}) {
        for (int kernel : {1, 3, 5, 7, 11}) {
            for (int row_block : {1, 2, 3}) {
                seed++;
                Network net("diff" + std::to_string(seed),
                            Shape{3, 46, 43});
                net.add(LayerSpec::padding("pad", 1));
                net.add(LayerSpec::conv("conv", 5, kernel, stride));
                net.add(LayerSpec::relu("relu"));
                net.add(LayerSpec::lrn("lrn"));
                net.add(LayerSpec::pool("pool", 2, 2,
                                        seed % 2 ? PoolMode::Max
                                                 : PoolMode::Avg));

                Rng wrng(seed * 7919 + 1);
                NetworkWeights weights(net, wrng);
                Tensor input(net.inputShape());
                Rng irng(seed * 104729 + 2);
                input.fillRandom(irng);

                Tensor ref;
                {
                    ScopedThreads serial(1);
                    ref = runRange(net, weights, input, 0,
                                   net.numLayers() - 1);
                }
                for (int threads : {1, 2, 4, hw}) {
                    ScopedThreads scope(threads);
                    LineBufferExecutor exec(net, weights, 0,
                                            net.numLayers() - 1,
                                            row_block);
                    Tensor out = exec.run(input);
                    CompareResult cmp = compareTensors(ref, out);
                    ASSERT_TRUE(cmp.match)
                        << "stride=" << stride << " kernel=" << kernel
                        << " rowBlock=" << row_block
                        << " threads=" << threads << ": " << cmp.str();
                }
            }
        }
    }
}

TEST(LineBufferExecutor, ReferenceItselfIsThreadCountInvariant)
{
    // runRange is also parallelized; its output must not depend on the
    // pool width either.
    Network net("refinv", Shape{3, 30, 30});
    net.addConvBlock("c1", 6, 3, 1, 1);
    net.addMaxPool("p1", 3, 2);
    net.addConvBlock("c2", 4, 5, 1, 2);
    Rng wrng(77);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(78);
    input.fillRandom(irng);

    Tensor ref;
    {
        ScopedThreads serial(1);
        ref = runRange(net, weights, input, 0, net.numLayers() - 1);
    }
    for (int threads : {2, 3, 8}) {
        ScopedThreads scope(threads);
        Tensor out = runRange(net, weights, input, 0,
                              net.numLayers() - 1);
        ASSERT_TRUE(tensorsEqual(ref, out)) << "threads=" << threads;
    }
}

class LineBufferRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(LineBufferRandom, MatchesReferenceOnRandomNetworks)
{
    const uint64_t seed = static_cast<uint64_t>(GetParam());
    Rng rng(seed * 271 + 3);
    Network net = randomFusableNet(rng);
    int block = rng.range(1, 5);
    expectLineBufferMatches(net, 0, net.numLayers() - 1, seed, block);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LineBufferRandom, ::testing::Range(0, 30));

} // namespace
} // namespace flcnn
