/**
 * @file
 * LineBufferExecutor: bit-exact equivalence with the reference and with
 * the pyramid executor, plus line-buffer capacity accounting.
 */

#include <gtest/gtest.h>

#include "fusion/fused_executor.hh"
#include "fusion/line_buffer_executor.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

void
expectLineBufferMatches(const Network &net, int first, int last,
                        uint64_t seed, int row_block = 1)
{
    Rng wrng(seed);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inShape(first));
    Rng irng(seed ^ 0xbeef);
    input.fillRandom(irng);

    Tensor ref = runRange(net, weights, input, first, last);
    LineBufferExecutor exec(net, weights, first, last, row_block);
    LineBufferStats stats;
    Tensor out = exec.run(input, &stats);

    CompareResult cmp = compareTensors(ref, out);
    EXPECT_TRUE(cmp.match)
        << net.name() << " block " << row_block << ": " << cmp.str();
    EXPECT_EQ(stats.loadedBytes, net.inShape(first).bytes());
    EXPECT_EQ(stats.storedBytes, net.outShape(last).bytes());
}

TEST(LineBufferExecutor, TwoConv)
{
    expectLineBufferMatches(tinyNet(), 0, 1, 41);
}

TEST(LineBufferExecutor, PadConvReluPoolStack)
{
    Network net("stack", Shape{3, 22, 22});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 3, 2);
    net.addConvBlock("c2", 5, 3, 1, 2);
    expectLineBufferMatches(net, 0, net.numLayers() - 1, 42);
}

TEST(LineBufferExecutor, StridedAndGrouped)
{
    Network net("sg", Shape{4, 25, 25});
    net.add(LayerSpec::conv("c1", 6, 5, 2, 2));
    net.add(LayerSpec::relu("r1"));
    net.add(LayerSpec::conv("c2", 4, 3, 1));
    expectLineBufferMatches(net, 0, 2, 43);
}

TEST(LineBufferExecutor, LrnStage)
{
    Network net("lrn", Shape{6, 12, 12});
    net.add(LayerSpec::conv("c1", 6, 3, 1));
    net.add(LayerSpec::lrn("n1"));
    net.add(LayerSpec::conv("c2", 3, 3, 1));
    expectLineBufferMatches(net, 0, 2, 44);
}

TEST(LineBufferExecutor, AvgPool)
{
    Network net("avg", Shape{2, 15, 15});
    net.add(LayerSpec::conv("c1", 3, 3, 1));
    net.add(LayerSpec::pool("p1", 3, 2, PoolMode::Avg));
    expectLineBufferMatches(net, 0, 1, 45);
}

TEST(LineBufferExecutor, BufferBytesAreKRowsPerWindowedLayer)
{
    Network net("bytes", Shape{3, 18, 18});
    net.add(LayerSpec::conv("c1", 4, 3, 1));  // ring 3 rows x 18 x 3ch
    net.add(LayerSpec::pool("p1", 2, 2));     // ring 2 rows x 16 x 4ch
    Rng rng(1);
    NetworkWeights weights(net, rng);
    LineBufferExecutor exec(net, weights, 0, 1);
    int64_t expect = (3LL * 3 * 18 + 4LL * 2 * 16) * 4;
    EXPECT_EQ(exec.bufferBytes(), expect);
}

TEST(LineBufferExecutor, AgreesWithPyramidExecutor)
{
    Network net("agree", Shape{3, 21, 21});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 3, 2);
    net.addConvBlock("c2", 6, 3, 1, 1);

    Rng wrng(46);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(47);
    input.fillRandom(irng);

    LineBufferExecutor lb(net, weights, 0, net.numLayers() - 1);
    FusedExecutor py(net, weights,
                     TilePlan(net, 0, net.numLayers() - 1, 1, 1));
    Tensor a = lb.run(input);
    Tensor b = py.run(input);
    EXPECT_TRUE(tensorsEqual(a, b));
}

TEST(LineBufferExecutor, RowBlockingStaysExact)
{
    Network net("blk", Shape{3, 23, 23});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 3, 2);
    net.addConvBlock("c2", 6, 3, 1, 1);
    for (int block : {1, 2, 3, 4, 7, 32})
        expectLineBufferMatches(net, 0, net.numLayers() - 1, 48, block);
}

TEST(LineBufferExecutor, RowBlockingStridedAndRagged)
{
    Network net("blkrag", Shape{2, 29, 25});
    net.add(LayerSpec::conv("c1", 4, 5, 2));
    net.add(LayerSpec::conv("c2", 3, 2, 1));
    for (int block : {2, 3, 5})
        expectLineBufferMatches(net, 0, 1, 49, block);
}

TEST(LineBufferExecutor, RowBlockingGrowsBuffers)
{
    Network net("blkbuf", Shape{3, 18, 18});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    Rng rng(1);
    NetworkWeights weights(net, rng);
    LineBufferExecutor one(net, weights, 0, 0, 1);
    LineBufferExecutor four(net, weights, 0, 0, 4);
    // ring rows: K vs (B-1)*S + K.
    EXPECT_EQ(one.bufferBytes(), 3LL * 3 * 18 * 4);
    EXPECT_EQ(four.bufferBytes(), 3LL * 6 * 18 * 4);
}

class LineBufferRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(LineBufferRandom, MatchesReferenceOnRandomNetworks)
{
    const uint64_t seed = static_cast<uint64_t>(GetParam());
    Rng rng(seed * 271 + 3);
    Network net = randomFusableNet(rng);
    int block = rng.range(1, 5);
    expectLineBufferMatches(net, 0, net.numLayers() - 1, seed, block);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LineBufferRandom, ::testing::Range(0, 30));

} // namespace
} // namespace flcnn
