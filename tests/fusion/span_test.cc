/** @file Span algebra and per-layer span transfer functions. */

#include <gtest/gtest.h>

#include "fusion/span.hh"

namespace flcnn {
namespace {

TEST(Span, BasicsAndClip)
{
    Span s{2, 5};
    EXPECT_EQ(s.width(), 3);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE((Span{3, 3}).empty());
    EXPECT_TRUE((Span{5, 2}).width() == 0);

    EXPECT_EQ((Span{-2, 4}).clip(10), (Span{0, 4}));
    EXPECT_EQ((Span{3, 12}).clip(10), (Span{3, 10}));
    EXPECT_EQ((Span{-5, -1}).clip(10), (Span{0, 0}));
}

TEST(Span, ClipNormalizesInvertedSpans)
{
    // begin > end after clipping must collapse to a positioned empty
    // span with a valid end (monotonicity of ends is load-bearing for
    // the fresh-data diffs).
    Span s{26, 25};
    Span c = s.clip(25);
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.begin, c.end);
    EXPECT_LE(c.end, 25);
    EXPECT_GE(c.end, 0);
}

TEST(Span, ConvTransfer)
{
    LayerSpec conv = LayerSpec::conv("c", 1, 3, 1);
    EXPECT_EQ(layerInSpan(conv, Span{0, 1}, 100), (Span{0, 3}));
    EXPECT_EQ(layerInSpan(conv, Span{4, 7}, 100), (Span{4, 9}));

    LayerSpec strided = LayerSpec::conv("c", 1, 5, 2);
    EXPECT_EQ(layerInSpan(strided, Span{3, 6}, 100), (Span{6, 15}));
}

TEST(Span, PoolTransferUsesSameRecursion)
{
    LayerSpec pool = LayerSpec::pool("p", 2, 2);
    EXPECT_EQ(layerInSpan(pool, Span{0, 4}, 100), (Span{0, 8}));
    EXPECT_EQ(layerInSpan(pool, Span{3, 5}, 100), (Span{6, 10}));
}

TEST(Span, PadTransferShiftsAndClips)
{
    LayerSpec pad = LayerSpec::padding("p", 2);
    EXPECT_EQ(layerInSpan(pad, Span{0, 5}, 10), (Span{0, 3}));
    EXPECT_EQ(layerInSpan(pad, Span{5, 9}, 10), (Span{3, 7}));
    EXPECT_EQ(layerInSpan(pad, Span{10, 14}, 10), (Span{8, 10}));
    // Fully inside the left border.
    EXPECT_TRUE(layerInSpan(pad, Span{0, 2}, 10).empty());
}

TEST(Span, PointwiseIdentity)
{
    LayerSpec relu = LayerSpec::relu("r");
    EXPECT_EQ(layerInSpan(relu, Span{3, 8}, 100), (Span{3, 8}));
    LayerSpec lrn = LayerSpec::lrn("n");
    EXPECT_EQ(layerInSpan(lrn, Span{3, 8}, 100), (Span{3, 8}));
}

TEST(Span, PaperRecursionWidth)
{
    // |in| = S*|out| + K - S for interior spans.
    for (int k = 1; k <= 7; k++) {
        for (int s = 1; s <= 3; s++) {
            LayerSpec conv = LayerSpec::conv("c", 1, k, s);
            for (int d = 1; d <= 6; d++) {
                Span in = layerInSpan(conv, Span{2, 2 + d}, 10000);
                EXPECT_EQ(in.width(), s * d + k - s);
            }
        }
    }
}

TEST(Span, EmptySpanStaysPositioned)
{
    LayerSpec conv = LayerSpec::conv("c", 1, 3, 1);
    Span in = layerInSpan(conv, Span{5, 5}, 100);
    EXPECT_TRUE(in.empty());
    // Anchored at the transformed end: (5-1)*1+3 = 7.
    EXPECT_EQ(in.end, 7);
}

TEST(Span, MonotoneEndsPreserved)
{
    // Composing the transfer over a monotone out-span sequence yields
    // monotone in-span ends — the invariant fresh diffs rely on.
    LayerSpec conv = LayerSpec::conv("c", 1, 3, 2);
    LayerSpec pad = LayerSpec::padding("p", 1);
    int prev_end = -1;
    for (int c = 0; c < 12; c++) {
        Span out{c, c + 1};
        Span mid = layerInSpan(conv, out, 40);
        Span in = layerInSpan(pad, mid, 23);
        EXPECT_GE(in.end, prev_end);
        prev_end = in.end;
    }
}

} // namespace
} // namespace flcnn
