/** @file LatencyHistogram quantile math and the ServerStats hub. */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace_event.hh"
#include "serve/server_stats.hh"

namespace flcnn {
namespace {

TEST(LatencyHistogram, BucketIndexIsMonotonic)
{
    int prev = -1;
    for (double v = 1.0; v < 1e9; v *= 1.37) {
        const int idx = LatencyHistogram::bucketIndex(v);
        EXPECT_GE(idx, prev);
        prev = idx;
        // The value lands at or below its bucket's upper edge.
        EXPECT_LE(v, LatencyHistogram::bucketUpper(idx));
    }
}

TEST(LatencyHistogram, RelativeErrorBounded)
{
    // Log-linear with 64 sub-buckets: the bucket upper edge
    // overestimates a recorded value by at most 1/64 (~1.6%).
    for (double v : {1.5, 63.0, 64.0, 100.0, 1000.5, 123456.0, 9.9e7}) {
        LatencyHistogram h;
        h.record(v);
        const double q = h.quantile(0.5);
        EXPECT_GE(q, v * (1.0 - 1e-12));
        EXPECT_LE(q, v * (1.0 + 1.0 / 64 + 1e-12));
    }
}

TEST(LatencyHistogram, SmallCountsWithinOneMicrosecond)
{
    // Values below 64 us land in width-1 buckets; quantiles report
    // the bucket's upper edge (value + 1), clamped to the maximum
    // seen — a conservative overestimate that never under-reports a
    // tail latency.
    LatencyHistogram h;
    for (double v : {3.0, 1.0, 2.0, 2.0, 5.0})
        h.record(v);
    EXPECT_EQ(h.count(), 5);
    EXPECT_DOUBLE_EQ(h.sum(), 13.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);  // rank 1 is value 1
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);  // rank 3 is value 2
    EXPECT_DOUBLE_EQ(h.quantile(0.8), 4.0);  // rank 4 is value 3
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);  // clamped to max()
}

TEST(LatencyHistogram, EmptyHistogramHasNoQuantiles)
{
    // No recorded values means no quantiles: NaN, never a plausible
    // latency like 0 that a dashboard would read as a perfect p99.
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0);
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_TRUE(std::isnan(h.quantile(q))) << "q=" << q;
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleValueReportsItselfAtEveryQuantile)
{
    LatencyHistogram h;
    h.record(7.0);
    EXPECT_EQ(h.count(), 1);
    // One value below 64 us: its bucket's upper edge (8) clamps to
    // the recorded maximum, so every quantile is exactly the value.
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.quantile(q), 7.0) << "q=" << q;
}

TEST(LatencyHistogram, AllUnderflowStaysInRecordedRange)
{
    // Every value below the 1 us resolution floor: all land in the
    // first occupied bucket, whose 2 us upper edge must not leak out
    // as a quantile for a histogram that never saw 1 us.
    LatencyHistogram h;
    h.record(0.2);
    h.record(0.4);
    h.record(0.6);
    EXPECT_EQ(h.count(), 3);
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
        const double v = h.quantile(q);
        EXPECT_GE(v, 0.2) << "q=" << q;
        EXPECT_LE(v, 0.6) << "q=" << q;
    }
}

TEST(LatencyHistogram, QuantileClampsToMaxSeen)
{
    LatencyHistogram h;
    h.record(1000.0);  // bucket upper edge is above 1000
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(LatencyHistogram, ClampsTinyAndHugeValues)
{
    LatencyHistogram h;
    h.record(0.25);   // clamps to 1
    h.record(1e300);  // clamps to the top bucket
    EXPECT_EQ(h.count(), 2);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);  // upper edge of bucket 1
    EXPECT_GT(h.quantile(1.0), 0.0);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording)
{
    LatencyHistogram a, b, both;
    for (int i = 1; i <= 100; i++) {
        const double v = i * 17.3;
        (i % 2 ? a : b).record(v);
        both.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_DOUBLE_EQ(a.sum(), both.sum());
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(a.quantile(q), both.quantile(q));
}

void
fillTraffic(ServerStats &st)
{
    for (int i = 0; i < 10; i++)
        st.onSubmitted();
    for (int i = 0; i < 8; i++)
        st.onAdmitted();
    st.onRejected();
    st.onRejected();
    st.onBatch(0, 3);
    st.onBatch(0, 5);
    for (int i = 0; i < 8; i++) {
        RequestSpan s;
        s.id = i;
        s.model = 0;
        s.worker = i % 2;
        s.batch = i / 5;
        s.tSubmit = 0.001 * i;
        s.tStart = s.tSubmit + 0.002;
        s.tEnd = s.tStart + 0.010;
        st.onCompleted(s);
    }
}

TEST(ServerStats, CountersAndHistogramsAgree)
{
    ServerStats st;
    fillTraffic(st);
    EXPECT_EQ(st.submitted(), 10);
    EXPECT_EQ(st.admitted(), 8);
    EXPECT_EQ(st.rejected(), 2);
    EXPECT_EQ(st.completed(), 8);
    EXPECT_EQ(st.batches(), 2);
    EXPECT_DOUBLE_EQ(st.meanBatch(), 4.0);
    EXPECT_DOUBLE_EQ(st.maxBatchSeen(), 5.0);

    // The invariant the CI smoke asserts: one histogram entry per
    // completion, in every decomposition.
    EXPECT_EQ(st.totalLatency().count(), st.completed());
    EXPECT_EQ(st.queueWait().count(), st.completed());
    EXPECT_EQ(st.computeTime().count(), st.completed());
    EXPECT_EQ(static_cast<int64_t>(st.spans().size()), st.completed());

    // 2 ms queue wait + 10 ms compute, recorded in microseconds.
    EXPECT_NEAR(st.queueWait().mean(), 2000.0, 2000.0 / 64 + 1.0);
    EXPECT_NEAR(st.computeTime().mean(), 10000.0, 10000.0 / 64 + 1.0);
    EXPECT_NEAR(st.totalLatency().mean(), 12000.0, 12000.0 / 64 + 1.0);
}

TEST(ServerStats, RegisterIntoPublishesServeScopes)
{
    ServerStats st;
    fillTraffic(st);
    MetricsRegistry reg;
    st.registerInto(reg);

    EXPECT_EQ(reg.counter("serve:queue", "submitted"), 10);
    EXPECT_EQ(reg.counter("serve:queue", "admitted"), 8);
    EXPECT_EQ(reg.counter("serve:queue", "rejected"), 2);
    EXPECT_EQ(reg.counter("serve:batch", "batches"), 2);
    EXPECT_EQ(reg.counter("serve:latency:total", "count"), 8);
    EXPECT_EQ(reg.counter("serve:latency:queue_wait", "count"), 8);
    EXPECT_EQ(reg.counter("serve:latency:compute", "count"), 8);
    EXPECT_GT(reg.gauge("serve:latency:total", "p99_us"), 0.0);
    EXPECT_GE(reg.gauge("serve:latency:total", "p99_us"),
              reg.gauge("serve:latency:total", "p50_us"));
    // Per-worker completions sum to the total.
    EXPECT_EQ(reg.counter("serve:worker:0", "completed") +
                  reg.counter("serve:worker:1", "completed"),
              8);
}

TEST(ServerStats, NoPercentileGaugesBeforeFirstCompletion)
{
    // A server that has not completed a request publishes the zero
    // counts but no latency gauges — neither 0 nor NaN p50/p95/p99.
    ServerStats st;
    st.onSubmitted();
    st.onAdmitted();
    MetricsRegistry reg;
    st.registerInto(reg);
    EXPECT_EQ(reg.counter("serve:latency:total", "count"), 0);
    EXPECT_EQ(reg.counter("serve:latency:compute", "count"), 0);
    for (const Metric &m : reg.items()) {
        if (m.scope.rfind("serve:latency:", 0) == 0)
            EXPECT_EQ(m.name, "count") << m.scope << ":" << m.name;
    }
}

TEST(ServerStats, SpanLogIsBounded)
{
    ServerStats st(/*max_spans=*/4);
    for (int i = 0; i < 10; i++) {
        RequestSpan s;
        s.id = i;
        s.tSubmit = 0.001 * i;
        s.tStart = s.tSubmit + 0.001;
        s.tEnd = s.tStart + 0.001;
        st.onCompleted(s);
    }
    EXPECT_EQ(st.spans().size(), 4u);
    EXPECT_EQ(st.droppedSpans(), 6);
    EXPECT_EQ(st.completed(), 10);  // counting never saturates
}

TEST(ServerStats, AppendRequestTraceEmitsSpans)
{
    ServerStats st;
    fillTraffic(st);
    ChromeTrace tr;
    st.appendRequestTrace(tr, 7, 8);
    const std::string json = tr.json();
    // 8 compute spans + 8 queue-wait spans, plus metadata.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("req 0"), std::string::npos);
    EXPECT_NE(json.find("(queued)"), std::string::npos);
}

} // namespace
} // namespace flcnn
