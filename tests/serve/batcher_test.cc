/** @file DynamicBatcher: batch formation, deadlines, drain. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/batcher.hh"
#include "serve/server_stats.hh"

namespace flcnn {
namespace {

QueuedRequest
req(int64_t id, int model = 0, double submit_time = -1.0)
{
    QueuedRequest q;
    q.id = id;
    q.model = model;
    q.handle = std::make_shared<RequestHandle>();
    q.submitTime = submit_time < 0.0 ? monotonicSeconds() : submit_time;
    return q;
}

TEST(Batcher, SplitsAtMaxBatch)
{
    RequestQueue q(32, OverflowPolicy::Reject);
    for (int i = 0; i < 7; i++)
        q.push(req(i));
    q.close();

    BatchPolicy pol;
    pol.maxBatch = 3;
    DynamicBatcher b(q, pol);
    Batch batch;
    std::vector<size_t> sizes;
    std::vector<int64_t> ids;
    while (b.nextBatch(&batch)) {
        sizes.push_back(batch.size());
        for (const QueuedRequest &r : batch.items)
            ids.push_back(r.id);
    }
    EXPECT_EQ(sizes, (std::vector<size_t>{3, 3, 1}));
    EXPECT_EQ(ids, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(Batcher, MinBatchEqualsMaxIsDeterministic)
{
    // minBatch == maxBatch makes formation count-driven: the batcher
    // waits for a full batch regardless of arrival timing.
    RequestQueue q(32, OverflowPolicy::Reject);
    BatchPolicy pol;
    pol.maxBatch = 4;
    pol.minBatch = 4;
    DynamicBatcher b(q, pol);

    Batch batch;
    std::thread consumer([&] {
        ASSERT_TRUE(b.nextBatch(&batch));
    });
    // Feed one request at a time; the batch must only form at 4.
    for (int i = 0; i < 4; i++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        q.push(req(i));
    }
    consumer.join();
    EXPECT_EQ(batch.size(), 4u);
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(batch.items[i].id, i);
}

TEST(Batcher, ClosedQueueDrainsPartialBatch)
{
    RequestQueue q(32, OverflowPolicy::Reject);
    q.push(req(0));
    q.push(req(1));
    q.close();

    BatchPolicy pol;
    pol.maxBatch = 8;
    pol.minBatch = 8;  // unreachable; close() must override it
    DynamicBatcher b(q, pol);
    Batch batch;
    ASSERT_TRUE(b.nextBatch(&batch));
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_FALSE(b.nextBatch(&batch));
}

TEST(Batcher, BatchesCarryOneModelEach)
{
    RequestQueue q(32, OverflowPolicy::Reject);
    q.push(req(0, 0));
    q.push(req(1, 1));
    q.push(req(2, 0));
    q.close();

    BatchPolicy pol;
    pol.maxBatch = 8;
    DynamicBatcher b(q, pol);
    Batch batch;
    ASSERT_TRUE(b.nextBatch(&batch));
    EXPECT_EQ(batch.model, 0);
    EXPECT_EQ(batch.size(), 2u);
    ASSERT_TRUE(b.nextBatch(&batch));
    EXPECT_EQ(batch.model, 1);
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_FALSE(b.nextBatch(&batch));
}

TEST(Batcher, ExpiredRequestsCompleteAsExpired)
{
    RequestQueue q(32, OverflowPolicy::Reject);
    const double now = monotonicSeconds();
    QueuedRequest stale = req(0, 0, now - 1.0);  // queued 1 s ago
    RequestHandlePtr stale_handle = stale.handle;
    q.push(std::move(stale));
    q.push(req(1));
    q.close();

    ServerStats stats;
    BatchPolicy pol;
    pol.maxBatch = 8;
    DynamicBatcher b(q, pol, /*deadline_s=*/0.1, &stats);
    Batch batch;
    ASSERT_TRUE(b.nextBatch(&batch));
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch.items[0].id, 1);
    EXPECT_EQ(stale_handle->wait(), RequestStatus::Expired);
    EXPECT_EQ(stats.expired(), 1);
}

TEST(Batcher, BatchIdsIncrease)
{
    RequestQueue q(32, OverflowPolicy::Reject);
    for (int i = 0; i < 6; i++)
        q.push(req(i));
    q.close();
    BatchPolicy pol;
    pol.maxBatch = 2;
    DynamicBatcher b(q, pol);
    Batch batch;
    int64_t prev = -1;
    while (b.nextBatch(&batch)) {
        EXPECT_GT(batch.id, prev);
        prev = batch.id;
    }
}

} // namespace
} // namespace flcnn
