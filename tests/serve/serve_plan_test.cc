/**
 * @file
 * Compile-once / execute-many serving through fusion plans.
 *
 * Two layers of contract:
 *
 *  - ServeEngine semantics: warmup() compiles the worker's private
 *    plan copy exactly once; the steady-state request loop only
 *    executes (lazyCompiles() == 0). Skipping warmup compiles lazily,
 *    once, and is counted. addModel() validates the plan template
 *    against the supported-fusions table and rejects unsupported
 *    combinations with a fatal typed status — never a silent engine
 *    swap.
 *  - The differential grid: outputs served through compiled plans are
 *    bit-exact against nn::runRange on the AlexNet prefix and the VGG-E
 *    first five convs, at every engine kind, workers {1, 2, 8} x
 *    precisions {fp32, int8, fp16} (SIMD on/off comes from CI building
 *    the suite both ways). This is the pre-refactor serving contract,
 *    re-proven through the plan path.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "nn/precision.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "serve/server.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

Network
alexPrefixScaled(int hw)
{
    Network net("alex-prefix", Shape{3, hw, hw});
    net.add(LayerSpec::conv("conv1", 96, 11, 4));
    net.add(LayerSpec::relu("relu1"));
    net.addMaxPool("pool1", 3, 2);
    net.add(LayerSpec::padding("conv2_pad", 2));
    net.add(LayerSpec::conv("conv2", 256, 5, 1, 2));
    net.add(LayerSpec::relu("relu2"));
    return net;
}

Network
vggFiveScaled(int hw)
{
    Network net("vggE-first5", Shape{3, hw, hw});
    net.addConvBlock("conv1_1", 64, 3, 1, 1);
    net.addConvBlock("conv1_2", 64, 3, 1, 1);
    net.addMaxPool("pool1", 2, 2);
    net.addConvBlock("conv2_1", 128, 3, 1, 1);
    net.addConvBlock("conv2_2", 128, 3, 1, 1);
    net.addMaxPool("pool2", 2, 2);
    net.addConvBlock("conv3_1", 256, 3, 1, 1);
    return net;
}

/**
 * Serve @p requests images through warmed-up plan engines and assert
 * every output is bit-exact against runRange at the same precision.
 */
void
runPlanDifferential(const Network &net, Precision mode, int workers,
                    EngineKind engine, int requests = 8)
{
    SCOPED_TRACE(std::string(net.name()) + " " + precisionName(mode) +
                 " workers=" + std::to_string(workers) + " engine=" +
                 engineKindName(engine));

    Rng wrng(7);
    NetworkWeights weights(net, wrng);
    NetPrecision prec;
    const NetPrecision *pp = nullptr;
    if (mode != Precision::Fp32) {
        prec = NetPrecision::calibrate(net, weights, mode);
        pp = &prec;
    }

    constexpr int kPool = 4;
    std::vector<Tensor> inputs;
    std::vector<Tensor> expected;
    Rng irng(11);
    const int last = net.numLayers() - 1;
    for (int i = 0; i < kPool; i++) {
        inputs.emplace_back(net.inputShape());
        inputs.back().fillRandom(irng);
        expected.push_back(
            runRange(net, weights, inputs.back(), 0, last, pp));
    }

    ServeConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = 64;
    cfg.policy = OverflowPolicy::Block;
    cfg.batch.maxBatch = 3;
    cfg.engine = engine;
    cfg.warmup = true;  // compile-once path: workers pre-pin plans

    InferenceServer server(cfg);
    server.addModel(net.name(), net, weights, 0, -1, pp);
    server.start();

    std::vector<RequestHandlePtr> handles;
    for (int i = 0; i < requests; i++)
        handles.push_back(
            server.submit(0, Tensor(inputs[i % kPool])).handle);
    for (int i = 0; i < requests; i++) {
        ASSERT_EQ(handles[i]->wait(), RequestStatus::Ok);
        EXPECT_TRUE(tensorsEqual(expected[i % kPool],
                                 handles[i]->output()))
            << "request " << i << " diverged from runRange";
    }
    server.drainAndStop();
}

TEST(ServePlan, WarmupCompilesOnceWorkersOnlyExecute)
{
    Network net = alexPrefixScaled(67);
    Rng rng(3);
    NetworkWeights w(net, rng);
    ModelSpec spec;
    spec.name = "alex";
    spec.net = &net;
    spec.weights = &w;
    spec.firstLayer = 0;
    spec.lastLayer = net.numLayers() - 1;

    ServeEngine eng(spec, EngineKind::LineBuffer);
    EXPECT_FALSE(eng.plan().compiled());
    eng.warmup();
    EXPECT_TRUE(eng.plan().compiled());
    eng.warmup();  // idempotent

    Tensor in(net.inputShape());
    Rng irng(4);
    in.fillRandom(irng);
    Tensor golden = runRange(net, w, in, 0, spec.lastLayer);
    for (int i = 0; i < 4; i++)
        EXPECT_TRUE(tensorsEqual(golden, eng.run(in)));
    // The steady-state loop never compiled: warmup did, exactly once.
    EXPECT_EQ(eng.lazyCompiles(), 0);
    EXPECT_GT(eng.plan().compileSeconds(), 0.0);
}

TEST(ServePlan, SkippedWarmupCompilesLazilyExactlyOnce)
{
    Network net = alexPrefixScaled(67);
    Rng rng(5);
    NetworkWeights w(net, rng);
    ModelSpec spec;
    spec.name = "alex";
    spec.net = &net;
    spec.weights = &w;
    spec.firstLayer = 0;
    spec.lastLayer = net.numLayers() - 1;

    ServeEngine eng(spec, EngineKind::Fused);
    Tensor in(net.inputShape());
    Rng irng(6);
    in.fillRandom(irng);
    (void)eng.run(in);
    (void)eng.run(in);
    EXPECT_EQ(eng.lazyCompiles(), 1);
}

TEST(ServePlan, EngineUsesTheRegisteredPlanTemplate)
{
    Network net = alexPrefixScaled(67);
    Rng rng(9);
    NetworkWeights w(net, rng);
    // Template over a sub-range: the engine must serve exactly the
    // template's ops, not re-derive its own.
    auto tmpl = std::make_shared<FusionPlan>(net, w);
    tmpl->addRange(1, 3);
    ModelSpec spec;
    spec.name = "mid";
    spec.net = &net;
    spec.weights = &w;
    spec.firstLayer = 1;
    spec.lastLayer = 3;
    spec.plan = tmpl;

    ServeEngine eng(spec, EngineKind::LineBuffer);
    EXPECT_EQ(eng.plan().ops(), tmpl->ops());
    eng.warmup();
    EXPECT_FALSE(tmpl->compiled());  // workers compile private copies

    Tensor in(net.inShape(1));
    Rng irng(10);
    in.fillRandom(irng);
    Tensor golden = runRange(net, w, in, 1, 3);
    EXPECT_TRUE(tensorsEqual(golden, eng.run(in)));
}

TEST(ServePlan, Fp32GridAlexNetPrefix)
{
    Network net = alexPrefixScaled(67);
    for (int workers : {1, 2, 8})
        for (EngineKind kind :
             {EngineKind::Reference, EngineKind::Fused,
              EngineKind::LineBuffer, EngineKind::Recompute})
            runPlanDifferential(net, Precision::Fp32, workers, kind);
}

TEST(ServePlan, Fp32GridVggFirstFive)
{
    Network net = vggFiveScaled(40);
    for (int workers : {1, 2, 8})
        for (EngineKind kind :
             {EngineKind::Reference, EngineKind::Fused,
              EngineKind::LineBuffer, EngineKind::Recompute})
            runPlanDifferential(net, Precision::Fp32, workers, kind);
}

TEST(ServePlan, PrecisionGridAlexNetPrefix)
{
    Network net = alexPrefixScaled(67);
    for (Precision mode : {Precision::Int8, Precision::Fp16})
        for (int workers : {1, 2, 8})
            for (EngineKind kind :
                 {EngineKind::Reference, EngineKind::Fused,
                  EngineKind::LineBuffer, EngineKind::Recompute})
                runPlanDifferential(net, mode, workers, kind, 6);
}

TEST(ServePlan, PrecisionGridVggFirstFive)
{
    Network net = vggFiveScaled(40);
    for (Precision mode : {Precision::Int8, Precision::Fp16})
        for (int workers : {1, 2, 8})
            for (EngineKind kind :
                 {EngineKind::Reference, EngineKind::Fused,
                  EngineKind::LineBuffer, EngineKind::Recompute})
                runPlanDifferential(net, mode, workers, kind, 6);
}

TEST(ServePlanDeath, AddModelRejectsUnsupportedPlanTyped)
{
    // A network whose tail is a fully-connected head cannot compile
    // onto a fused engine: registration dies with the typed status in
    // the message instead of silently serving the reference path.
    Network net("conv-fc", Shape{2, 6, 6});
    net.add(LayerSpec::conv("c", 4, 3, 1));
    net.add(LayerSpec::relu("r"));
    net.add(LayerSpec::fullyConnected("fc", 10));
    Rng rng(13);
    NetworkWeights w(net, rng);

    ServeConfig cfg;
    cfg.engine = EngineKind::LineBuffer;
    auto reject = [&] {
        InferenceServer server(cfg);
        server.addModel("m", net, w);
    };
    EXPECT_EXIT(reject(), ::testing::ExitedWithCode(1),
                "unsupported_op");

    // The same model is a legal explicit choice on the reference
    // engine.
    ServeConfig ok = cfg;
    ok.engine = EngineKind::Reference;
    ok.warmup = false;
    InferenceServer server(ok);
    server.addModel("m", net, w);
    server.start();
    Tensor in(net.inputShape());
    Rng irng(14);
    in.fillRandom(irng);
    Tensor golden = runRange(net, w, in, 0, net.numLayers() - 1);
    auto h = server.submit(0, Tensor(in)).handle;
    ASSERT_EQ(h->wait(), RequestStatus::Ok);
    EXPECT_TRUE(tensorsEqual(golden, h->output()));
    server.drainAndStop();
}

} // namespace
} // namespace flcnn
