/**
 * @file
 * TensorArena / HandlePool: the allocation infrastructure under the
 * zero-copy serving hot path. Covers the recycle-reuse invariant
 * (freed slots come back LIFO, same storage), both degradation paths
 * (oversized shape, exhausted pool) falling back to counted heap
 * tensors, lease lifetime past the arena handle, slab-pooled request
 * handles outliving their pool, and — the PR's acceptance test — a
 * steady-state serving loop that performs zero heap allocations
 * between admission and completion.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "common/rng.hh"
#include "nn/zoo.hh"
#include "serve/arena.hh"
#include "serve/server.hh"
#include "tensor/tensor.hh"

// ---------------------------------------------------------------------
// Global allocation counter. The overrides are binary-wide but only
// count while armed, so the other suites in this binary are
// unaffected. AddressSanitizer interposes the allocator itself, so
// the zero-alloc assertion is compiled out under ASan.
// ---------------------------------------------------------------------

namespace {
std::atomic<bool> g_countAllocs{false};
std::atomic<int64_t> g_allocs{0};
} // namespace

#if !defined(__SANITIZE_ADDRESS__)

void *
operator new(std::size_t n)
{
    if (g_countAllocs.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#endif // !__SANITIZE_ADDRESS__

namespace flcnn {
namespace {

TEST(TensorArena, RecyclesSlotsLifo)
{
    auto arena = TensorArena::create(64, 4);
    const Shape s{1, 8, 8};

    ArenaLease a = arena->acquire(s);
    ASSERT_TRUE(a.active());
    float *const pa = a.data();
    a.release();
    EXPECT_FALSE(a.active());
    a.release();  // idempotent

    // LIFO free list: the slot just freed is the next one handed out,
    // so a recycling steady state keeps touching cache-warm storage.
    ArenaLease b = arena->acquire(s);
    ASSERT_TRUE(b.active());
    EXPECT_EQ(b.data(), pa);

    const ArenaStats st = arena->stats();
    EXPECT_EQ(st.acquires, 2);
    EXPECT_EQ(st.releases, 1);
    EXPECT_EQ(st.inUse, 1);
    EXPECT_EQ(st.slots, 4);
    EXPECT_EQ(st.exhaustedFallbacks, 0);
    EXPECT_EQ(st.oversizedFallbacks, 0);
}

TEST(TensorArena, OversizedShapeFallsBackToHeap)
{
    auto arena = TensorArena::create(16, 2);
    ArenaLease lease;
    Tensor t = arena->acquireTensor(Shape{4, 8, 8}, &lease);  // 256 > 16
    EXPECT_FALSE(lease.active());
    EXPECT_TRUE(t.ownsStorage());
    EXPECT_EQ(t.shape(), (Shape{4, 8, 8}));
    EXPECT_EQ(arena->stats().oversizedFallbacks, 1);
    EXPECT_EQ(arena->stats().acquires, 0);
}

TEST(TensorArena, ExhaustionFallsBackToHeapAndRecovers)
{
    auto arena = TensorArena::create(64, 2);
    const Shape s{1, 8, 8};

    ArenaLease a = arena->acquire(s);
    ArenaLease b = arena->acquire(s);
    ASSERT_TRUE(a.active());
    ASSERT_TRUE(b.active());

    ArenaLease overflowLease;
    Tensor t = arena->acquireTensor(s, &overflowLease);
    EXPECT_FALSE(overflowLease.active());
    EXPECT_TRUE(t.ownsStorage());  // degraded, not failed
    EXPECT_EQ(arena->stats().exhaustedFallbacks, 1);
    EXPECT_EQ(arena->stats().peakInUse, 2);

    // Returning any slot makes the arena serve again.
    b.release();
    ArenaLease c = arena->acquire(s);
    EXPECT_TRUE(c.active());
    EXPECT_EQ(arena->stats().exhaustedFallbacks, 1);
}

TEST(TensorArena, AcquiredTensorAliasesSlot)
{
    auto arena = TensorArena::create(64, 2);
    ArenaLease lease;
    Tensor t = arena->acquireTensor(Shape{1, 4, 4}, &lease);
    ASSERT_TRUE(lease.active());
    EXPECT_FALSE(t.ownsStorage());
    EXPECT_EQ(t.data(), lease.data());
    t.data()[0] = 42.0f;
    EXPECT_EQ(lease.data()[0], 42.0f);
}

TEST(TensorArena, LeaseSharesArenaOwnership)
{
    // A lease held past the last external arena reference (a client
    // keeping its RequestHandle after server teardown) must stay
    // backed by live storage.
    auto arena = TensorArena::create(64, 2);
    ArenaLease lease = arena->acquire(Shape{1, 8, 8});
    ASSERT_TRUE(lease.active());
    arena.reset();
    lease.data()[0] = 1.0f;
    EXPECT_EQ(lease.data()[0], 1.0f);
    lease.release();  // returns the slot, then drops the arena
}

TEST(TensorArena, LeaseMoveTransfersSlot)
{
    auto arena = TensorArena::create(64, 2);
    ArenaLease a = arena->acquire(Shape{1, 2, 2});
    ASSERT_TRUE(a.active());
    float *const pa = a.data();

    ArenaLease b = std::move(a);
    EXPECT_FALSE(a.active());
    ASSERT_TRUE(b.active());
    EXPECT_EQ(b.data(), pa);

    ArenaLease c;
    c = std::move(b);
    EXPECT_FALSE(b.active());
    ASSERT_TRUE(c.active());
    EXPECT_EQ(arena->stats().inUse, 1);
    c.release();
    EXPECT_EQ(arena->stats().inUse, 0);
}

TEST(HandlePool, PoolsUpToCapacityThenCountsHeapFallbacks)
{
    HandlePool pool(4);
    EXPECT_EQ(pool.capacity(), 4);

    std::vector<RequestHandlePtr> held;
    for (int i = 0; i < 5; i++)
        held.push_back(pool.acquire());
    EXPECT_EQ(pool.heapFallbacks(), 1);  // 5th exceeded the slab

    // Recycling: once the pooled handles return, fresh acquires come
    // from the slab again and the fallback counter stays put.
    held.clear();
    for (int i = 0; i < 4; i++)
        held.push_back(pool.acquire());
    EXPECT_EQ(pool.heapFallbacks(), 1);
}

TEST(HandlePool, HandlesOutlivePool)
{
    std::vector<RequestHandlePtr> held;
    {
        HandlePool pool(2);
        held.push_back(pool.acquire());
        held.push_back(pool.acquire());
        held.push_back(pool.acquire());  // heap fallback
    }
    // The slab is kept alive by the pooled handles' deleters; touching
    // and destroying them after the pool is gone must be safe.
    for (const RequestHandlePtr &h : held) {
        EXPECT_FALSE(h->done());
        EXPECT_EQ(h->status(), RequestStatus::Pending);
    }
    held.clear();
}

#if !defined(__SANITIZE_ADDRESS__)

/**
 * The PR's acceptance criterion: once the server is warm, a request
 * makes it from admission to completion with ZERO heap allocations —
 * input written into the arena, output returned as an arena view,
 * the handle from the slab pool, queue and batcher recycling
 * preallocated rings.
 */
TEST(ServeArena, SteadyStateServingAllocatesNothing)
{
    Network net = tinyNet();
    Rng wrng(3);
    NetworkWeights weights(net, wrng);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 16;
    cfg.batch.maxBatch = 4;
    cfg.intraOp = IntraOpMode::Inline;  // keep compute off the shared
                                        // pool: its task dispatch may
                                        // allocate
    InferenceServer server(cfg);
    server.addModel("tiny", net, weights);
    server.start();

    Tensor image(net.inputShape());
    Rng irng(5);
    image.fillRandom(irng);
    const size_t imageBytes =
        static_cast<size_t>(image.elems()) * sizeof(float);

    auto oneRequest = [&] {
        InputSlot slot = server.acquireInput(0);
        EXPECT_FALSE(slot.fallback);
        std::memcpy(slot.tensor.data(), image.data(), imageBytes);
        SubmitResult r = server.submit(std::move(slot));
        EXPECT_EQ(r.handle->wait(), RequestStatus::Ok);
        // Handle drops here: output slot and handle block recycle.
    };

    // Warmup: first-touch growth (per-model queue ring, batcher item
    // vector, worker bookkeeping) happens on the first few requests
    // and is amortized away.
    for (int i = 0; i < 24; i++)
        oneRequest();

    g_allocs.store(0);
    g_countAllocs.store(true);
    for (int i = 0; i < 64; i++)
        oneRequest();
    g_countAllocs.store(false);

    EXPECT_EQ(g_allocs.load(), 0)
        << "steady-state serving touched the heap";

    server.drainAndStop();
    const ArenaStats in = server.inputArenaStats();
    const ArenaStats out = server.outputArenaStats();
    EXPECT_EQ(in.exhaustedFallbacks + in.oversizedFallbacks, 0);
    EXPECT_EQ(out.exhaustedFallbacks + out.oversizedFallbacks, 0);
    EXPECT_EQ(server.handleHeapFallbacks(), 0);
}

#endif // !__SANITIZE_ADDRESS__

} // namespace
} // namespace flcnn
