/**
 * @file
 * Multi-tenant SLO machinery: class-priority dequeue order, load
 * shedding of best-effort traffic when a latency-critical budget is
 * threatened, core-affinity worker placement, and weight-pack
 * deduplication across co-resident servers.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "kernels/weight_pack.hh"
#include "nn/zoo.hh"
#include "serve/request_queue.hh"
#include "serve/server.hh"

namespace flcnn {
namespace {

QueuedRequest
req(int64_t id, int model)
{
    QueuedRequest q;
    q.id = id;
    q.model = model;
    q.handle = std::make_shared<RequestHandle>();
    q.submitTime = monotonicSeconds();
    return q;
}

TEST(RequestQueueSlo, LatencyCriticalDequeuesFirst)
{
    RequestQueue q(16, OverflowPolicy::Reject);
    q.setModelClass(0, SloClass::BestEffort);
    q.setModelClass(1, SloClass::LatencyCritical);

    // BE arrives first, LC second — the batcher must still see LC.
    ASSERT_EQ(q.push(req(0, 0)), AdmitResult::Admitted);
    ASSERT_EQ(q.push(req(1, 0)), AdmitResult::Admitted);
    ASSERT_EQ(q.push(req(2, 1)), AdmitResult::Admitted);
    EXPECT_EQ(q.countClass(SloClass::LatencyCritical), 1u);
    EXPECT_EQ(q.countClass(SloClass::BestEffort), 2u);

    int model = -1;
    ASSERT_TRUE(q.waitHead(&model));
    EXPECT_EQ(model, 1);

    std::vector<QueuedRequest> got;
    EXPECT_EQ(q.popModel(1, 8, &got), 1u);
    EXPECT_EQ(got[0].id, 2);
    EXPECT_EQ(q.countClass(SloClass::LatencyCritical), 0u);

    // LC drained: best-effort flows again, in FIFO order. popModel
    // appends (the batcher reuses one vector across batches).
    ASSERT_TRUE(q.waitHead(&model));
    EXPECT_EQ(model, 0);
    got.clear();
    EXPECT_EQ(q.popModel(0, 8, &got), 2u);
    EXPECT_EQ(got[0].id, 0);
    EXPECT_EQ(got[1].id, 1);
}

TEST(RequestQueueSlo, SameClassKeepsCrossModelFifo)
{
    RequestQueue q(16, OverflowPolicy::Reject);
    q.setModelClass(0, SloClass::LatencyCritical);
    q.setModelClass(1, SloClass::LatencyCritical);

    ASSERT_EQ(q.push(req(0, 1)), AdmitResult::Admitted);
    ASSERT_EQ(q.push(req(1, 0)), AdmitResult::Admitted);

    // Equal priority: the oldest submission picks the model, exactly
    // as the single-class queue behaved before SLO classes existed.
    int model = -1;
    ASSERT_TRUE(q.waitHead(&model));
    EXPECT_EQ(model, 1);
}

/** Deterministic shed: after one latency-critical completion primes
 *  the compute EMA, a vanishingly small LC budget makes every
 *  best-effort admission a threat, so it sheds — and the ledger
 *  stays balanced. */
TEST(ServeSlo, BestEffortShedsWhenBudgetThreatened)
{
    Network net = tinyNet();
    Rng wrng(3);
    NetworkWeights weights(net, wrng);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 16;
    InferenceServer server(cfg);
    const int lc = server.addModel("lc", net, weights, 0, -1, nullptr,
                                   false, false,
                                   SloClass::LatencyCritical,
                                   /*p99_budget_ms=*/1e-6);
    const int be = server.addModel("be", net, weights, 0, -1, nullptr,
                                   false, false, SloClass::BestEffort);
    server.start();

    Tensor image(net.inputShape());
    Rng irng(5);
    image.fillRandom(irng);

    // Before any LC completion there is no EMA to project from, so
    // best-effort is admitted normally.
    SubmitResult early = server.submit(be, Tensor(image));
    EXPECT_EQ(early.admit, AdmitResult::Admitted);
    EXPECT_EQ(early.handle->wait(), RequestStatus::Ok);

    SubmitResult first = server.submit(lc, Tensor(image));
    EXPECT_EQ(first.handle->wait(), RequestStatus::Ok);

    // EMA primed, budget microscopic: best-effort now sheds at
    // admission with an already-terminal handle.
    SubmitResult shed = server.submit(be, Tensor(image));
    EXPECT_EQ(shed.admit, AdmitResult::Shed);
    EXPECT_EQ(shed.handle->wait(), RequestStatus::Shed);
    EXPECT_EQ(shed.handle->output().elems(), 0);

    // Latency-critical traffic is never shed.
    SubmitResult more = server.submit(lc, Tensor(image));
    EXPECT_EQ(more.admit, AdmitResult::Admitted);
    EXPECT_EQ(more.handle->wait(), RequestStatus::Ok);

    server.drainAndStop();
    const ServerStats &st = server.stats();
    EXPECT_EQ(st.shed(), 1);
    EXPECT_EQ(st.completed(), 3);
    EXPECT_EQ(st.submitted(), st.admitted() + st.rejected() +
                                  st.cancelled() + st.shed());
    EXPECT_EQ(st.admitted(), st.completed() + st.expired());
    EXPECT_EQ(st.classLatency(SloClass::LatencyCritical).count(), 2);
    EXPECT_EQ(st.classLatency(SloClass::BestEffort).count(), 1);
    EXPECT_GT(
        st.classComputeEmaSeconds(SloClass::LatencyCritical), 0.0);
}

/** Models without a declared budget never trigger shedding, however
 *  loaded the queue gets. */
TEST(ServeSlo, NoBudgetMeansNoShedding)
{
    Network net = tinyNet();
    Rng wrng(3);
    NetworkWeights weights(net, wrng);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 64;
    InferenceServer server(cfg);
    server.addModel("lc", net, weights);  // LC, budget 0
    const int be = server.addModel("be", net, weights, 0, -1, nullptr,
                                   false, false, SloClass::BestEffort);
    server.start();

    Tensor image(net.inputShape());
    Rng irng(5);
    image.fillRandom(irng);
    std::vector<RequestHandlePtr> handles;
    for (int i = 0; i < 16; i++)
        handles.push_back(server.submit(be, Tensor(image)).handle);
    for (auto &h : handles)
        EXPECT_EQ(h->wait(), RequestStatus::Ok);
    server.drainAndStop();
    EXPECT_EQ(server.stats().shed(), 0);
}

/** Pinning is best-effort placement: every worker pinned where the
 *  platform supports affinity, a logged no-op (pinnedWorkers() == 0)
 *  where it doesn't — never an error either way. */
TEST(ServeSlo, WorkerPinningReportsPlacement)
{
    Network net = tinyNet();
    Rng wrng(3);
    NetworkWeights weights(net, wrng);

    ServeConfig cfg;
    cfg.workers = 2;
    cfg.pinWorkers = true;
    InferenceServer server(cfg);
    server.addModel("tiny", net, weights);
    server.start();

    EXPECT_GE(server.pinnedWorkers(), 0);
    EXPECT_LE(server.pinnedWorkers(), cfg.workers);
#if defined(__linux__)
    EXPECT_EQ(server.pinnedWorkers(), cfg.workers);
#endif

    Tensor image(net.inputShape());
    Rng irng(5);
    image.fillRandom(irng);
    SubmitResult r = server.submit(0, std::move(image));
    EXPECT_EQ(r.handle->wait(), RequestStatus::Ok);
    server.drainAndStop();
}

/** Two servers hosting the same network content share one weight-pack
 *  set through the content-addressed SharedPackRegistry — N resident
 *  model pools, one copy of the packed weights. */
TEST(ServeSlo, CoResidentServersShareWeightPacks)
{
    Network net = tinyNet();
    Rng wrng(3);
    NetworkWeights weights(net, wrng);
    Tensor image(net.inputShape());
    Rng irng(5);
    image.fillRandom(irng);

    ServeConfig cfg;
    cfg.workers = 1;

    const int64_t hits0 = SharedPackRegistry::global().sharedHits();

    InferenceServer a(cfg);
    a.addModel("tenant-a", net, weights);
    a.start();
    SubmitResult ra = a.submit(0, Tensor(image));
    EXPECT_EQ(ra.handle->wait(), RequestStatus::Ok);

    InferenceServer b(cfg);
    b.addModel("tenant-b", net, weights);
    b.start();
    SubmitResult rb = b.submit(0, Tensor(image));
    EXPECT_EQ(rb.handle->wait(), RequestStatus::Ok);

    // Server b's engines found a's packs in the registry.
    EXPECT_GT(SharedPackRegistry::global().sharedHits(), hits0);

    a.drainAndStop();
    b.drainAndStop();
}

} // namespace
} // namespace flcnn
