/**
 * @file
 * Differential suite for the serving runtime: everything that comes
 * out of the batched server must be bit-identical to running each
 * image alone through nn::runRange, at every worker count, batch
 * size, engine kind, and intra-op mode. Batching is grouping — it
 * must never change a single bit of any request's output.
 *
 * The grids follow the PR's test matrix: AlexNet's fused prefix and
 * the VGG-E first-five-conv pyramid, workers {1, 2, 8} x batch
 * {1, 3, 8}. The full-resolution networks are exercised once each;
 * the grids run at reduced spatial scale (identical layer
 * parameters) to keep the suite fast. SIMD on/off coverage comes
 * from CI building and running this suite in both configurations.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "serve/server.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

/** AlexNet's fused prefix (real conv/pool/pad parameters) at a
 *  reduced input scale. */
Network
alexPrefixScaled(int hw)
{
    Network net("alex-prefix", Shape{3, hw, hw});
    net.add(LayerSpec::conv("conv1", 96, 11, 4));
    net.add(LayerSpec::relu("relu1"));
    net.addMaxPool("pool1", 3, 2);
    net.add(LayerSpec::padding("conv2_pad", 2));
    net.add(LayerSpec::conv("conv2", 256, 5, 1, 2));
    net.add(LayerSpec::relu("relu2"));
    return net;
}

/** VGG-E first five convolution stages at a reduced input scale. */
Network
vggFiveScaled(int hw)
{
    Network net("vggE-first5", Shape{3, hw, hw});
    net.addConvBlock("conv1_1", 64, 3, 1, 1);
    net.addConvBlock("conv1_2", 64, 3, 1, 1);
    net.addMaxPool("pool1", 2, 2);
    net.addConvBlock("conv2_1", 128, 3, 1, 1);
    net.addConvBlock("conv2_2", 128, 3, 1, 1);
    net.addMaxPool("pool2", 2, 2);
    net.addConvBlock("conv3_1", 256, 3, 1, 1);
    return net;
}

/**
 * Push @p requests images through a server with the given shape and
 * compare every output bit-for-bit against the per-image reference.
 */
void
runDifferential(const Network &net, int workers, int batch_max,
                int requests, EngineKind engine,
                IntraOpMode intra_op = IntraOpMode::Auto)
{
    SCOPED_TRACE(std::string(net.name()) + " workers=" +
                 std::to_string(workers) + " batch=" +
                 std::to_string(batch_max) + " engine=" +
                 engineKindName(engine));

    Rng wrng(7);
    NetworkWeights weights(net, wrng);

    constexpr int kPool = 4;
    std::vector<Tensor> inputs;
    std::vector<Tensor> expected;
    Rng irng(11);
    const int last = net.numLayers() - 1;
    for (int i = 0; i < kPool; i++) {
        inputs.emplace_back(net.inputShape());
        inputs.back().fillRandom(irng);
        expected.push_back(
            runRange(net, weights, inputs.back(), 0, last));
    }

    ServeConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = 64;
    cfg.policy = OverflowPolicy::Block;
    cfg.batch.maxBatch = batch_max;
    cfg.engine = engine;
    cfg.intraOp = intra_op;
    cfg.warmup = false;  // bit-exactness must not depend on warmup

    InferenceServer server(cfg);
    server.addModel(net.name(), net, weights);
    server.start();

    std::vector<RequestHandlePtr> handles;
    for (int i = 0; i < requests; i++)
        handles.push_back(
            server.submit(0, Tensor(inputs[i % kPool])).handle);
    for (int i = 0; i < requests; i++) {
        ASSERT_EQ(handles[i]->wait(), RequestStatus::Ok);
        const CompareResult cr =
            compareTensors(expected[i % kPool], handles[i]->output());
        EXPECT_TRUE(cr.match)
            << "request " << i << ": max abs diff " << cr.maxAbsDiff;
        EXPECT_GE(handles[i]->workerId(), 0);
        EXPECT_LT(handles[i]->workerId(), workers);
        EXPECT_GE(handles[i]->batchSize(), 1);
        EXPECT_LE(handles[i]->batchSize(), batch_max);
        EXPECT_GE(handles[i]->computeSeconds(), 0.0);
        EXPECT_GE(handles[i]->queueWaitSeconds(), 0.0);
    }
    server.drainAndStop();

    const ServerStats &st = server.stats();
    EXPECT_EQ(st.completed(), requests);
    EXPECT_EQ(st.totalLatency().count(), st.completed());
}

TEST(ServeDifferential, AlexNetPrefixGrid)
{
    Network net = alexPrefixScaled(67);
    for (int workers : {1, 2, 8})
        for (int batch : {1, 3, 8})
            runDifferential(net, workers, batch, 10,
                            EngineKind::LineBuffer);
}

TEST(ServeDifferential, VggFirstFiveGrid)
{
    Network net = vggFiveScaled(40);
    for (int workers : {1, 2, 8})
        for (int batch : {1, 3, 8})
            runDifferential(net, workers, batch, 10,
                            EngineKind::Fused);
}

TEST(ServeDifferential, FullScaleAlexNetPrefix)
{
    // The real 227x227 network, once, through the batched server.
    Network net = alexnetFusedPrefix();
    runDifferential(net, 2, 3, 6, EngineKind::LineBuffer);
}

TEST(ServeDifferential, FullScaleVggFirstFive)
{
    Network net = vggEPrefix(5);
    runDifferential(net, 2, 8, 4, EngineKind::LineBuffer);
}

TEST(ServeDifferential, EveryEngineKindMatches)
{
    Network net = alexPrefixScaled(67);
    for (EngineKind kind :
         {EngineKind::Reference, EngineKind::Fused,
          EngineKind::LineBuffer, EngineKind::Recompute})
        runDifferential(net, 2, 3, 6, kind);
}

TEST(ServeDifferential, IntraOpModesMatch)
{
    // Inline and pooled intra-op execution must produce identical
    // bits (the ThreadPool static-partition contract).
    Network net = vggFiveScaled(40);
    for (IntraOpMode mode :
         {IntraOpMode::Inline, IntraOpMode::Pool, IntraOpMode::Auto})
        runDifferential(net, 2, 3, 8, EngineKind::LineBuffer, mode);
}

TEST(ServeDifferential, DeterministicBatchFormation)
{
    // minBatch == maxBatch: formation is count-driven, so batch
    // compositions are a pure function of the request sequence.
    Network net = alexPrefixScaled(67);
    Rng wrng(7);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(11);
    input.fillRandom(irng);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.batch.maxBatch = 4;
    cfg.batch.minBatch = 4;
    cfg.warmup = false;
    InferenceServer server(cfg);
    server.addModel(net.name(), net, weights);
    server.start();

    std::vector<RequestHandlePtr> handles;
    for (int i = 0; i < 8; i++)
        handles.push_back(server.submit(0, Tensor(input)).handle);
    for (const RequestHandlePtr &h : handles)
        ASSERT_EQ(h->wait(), RequestStatus::Ok);
    server.drainAndStop();

    for (const RequestHandlePtr &h : handles)
        EXPECT_EQ(h->batchSize(), 4);
    EXPECT_EQ(server.stats().batches(), 2);
}

TEST(ServeDifferential, RejectPolicySurfacesBackpressure)
{
    Network net = alexPrefixScaled(67);
    Rng wrng(7);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(11);
    input.fillRandom(irng);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 1;
    cfg.policy = OverflowPolicy::Reject;
    cfg.batch.maxBatch = 1;
    // Hold batch formation back so submits outrun the worker.
    cfg.batch.minBatch = 1;
    cfg.warmup = false;
    InferenceServer server(cfg);
    server.addModel(net.name(), net, weights);
    server.start();

    int rejected = 0;
    std::vector<RequestHandlePtr> handles;
    for (int i = 0; i < 32; i++) {
        SubmitResult r = server.submit(0, Tensor(input));
        if (r.admit == AdmitResult::Rejected) {
            rejected++;
            // Rejected handles are terminal immediately.
            EXPECT_EQ(r.handle->wait(), RequestStatus::Rejected);
        } else {
            handles.push_back(r.handle);
        }
    }
    for (const RequestHandlePtr &h : handles)
        EXPECT_EQ(h->wait(), RequestStatus::Ok);
    server.drainAndStop();
    EXPECT_EQ(server.stats().rejected(), rejected);
    EXPECT_EQ(server.stats().completed(),
              static_cast<int64_t>(handles.size()));
}

TEST(ServeDifferential, SubmitAfterDrainIsCancelled)
{
    Network net = alexPrefixScaled(67);
    Rng wrng(7);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(11);
    input.fillRandom(irng);

    ServeConfig cfg;
    cfg.workers = 1;
    cfg.warmup = false;
    InferenceServer server(cfg);
    server.addModel(net.name(), net, weights);
    server.start();
    server.drainAndStop();

    SubmitResult r = server.submit(0, Tensor(input));
    EXPECT_EQ(r.admit, AdmitResult::Closed);
    EXPECT_EQ(r.handle->wait(), RequestStatus::Cancelled);
}

} // namespace
} // namespace flcnn
