/** @file RequestQueue: admission control, FIFO order, close(). */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/request_queue.hh"

namespace flcnn {
namespace {

QueuedRequest
req(int64_t id, int model = 0)
{
    QueuedRequest q;
    q.id = id;
    q.model = model;
    q.handle = std::make_shared<RequestHandle>();
    q.submitTime = monotonicSeconds();
    return q;
}

TEST(RequestQueue, PushPopFifo)
{
    RequestQueue q(8, OverflowPolicy::Reject);
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(q.push(req(i)), AdmitResult::Admitted);
    EXPECT_EQ(q.size(), 5u);

    int model = -1;
    ASSERT_TRUE(q.waitHead(&model));
    EXPECT_EQ(model, 0);
    EXPECT_EQ(q.countModel(0), 5u);

    std::vector<QueuedRequest> got;
    EXPECT_EQ(q.popModel(0, 3, &got), 3u);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].id, 0);
    EXPECT_EQ(got[1].id, 1);
    EXPECT_EQ(got[2].id, 2);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.popModel(0, 10, &got), 2u);
    EXPECT_EQ(got.back().id, 4);
    EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueue, RejectPolicyShedsWhenFull)
{
    RequestQueue q(2, OverflowPolicy::Reject);
    EXPECT_EQ(q.push(req(0)), AdmitResult::Admitted);
    EXPECT_EQ(q.push(req(1)), AdmitResult::Admitted);
    EXPECT_EQ(q.push(req(2)), AdmitResult::Rejected);
    std::vector<QueuedRequest> got;
    q.popModel(0, 1, &got);
    EXPECT_EQ(q.push(req(3)), AdmitResult::Admitted);
}

TEST(RequestQueue, BlockPolicyWaitsForSpace)
{
    RequestQueue q(1, OverflowPolicy::Block);
    EXPECT_EQ(q.push(req(0)), AdmitResult::Admitted);

    std::atomic<bool> admitted{false};
    std::thread producer([&] {
        AdmitResult r = q.push(req(1));
        EXPECT_EQ(r, AdmitResult::Admitted);
        admitted = true;
    });
    // The producer must be blocked: the queue is full.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(admitted.load());

    std::vector<QueuedRequest> got;
    q.popModel(0, 1, &got);
    producer.join();
    EXPECT_TRUE(admitted.load());
    EXPECT_EQ(q.size(), 1u);
}

TEST(RequestQueue, PopModelPreservesOrderAcrossModels)
{
    RequestQueue q(16, OverflowPolicy::Reject);
    q.push(req(0, 0));
    q.push(req(1, 1));
    q.push(req(2, 0));
    q.push(req(3, 1));
    q.push(req(4, 0));

    EXPECT_EQ(q.countModel(0), 3u);
    EXPECT_EQ(q.countModel(1), 2u);

    // Pop model 0: its items come out FIFO, model 1 keeps its order.
    std::vector<QueuedRequest> got;
    EXPECT_EQ(q.popModel(0, 10, &got), 3u);
    EXPECT_EQ(got[0].id, 0);
    EXPECT_EQ(got[1].id, 2);
    EXPECT_EQ(got[2].id, 4);

    int model = -1;
    ASSERT_TRUE(q.waitHead(&model));
    EXPECT_EQ(model, 1);
    got.clear();
    EXPECT_EQ(q.popModel(1, 10, &got), 2u);
    EXPECT_EQ(got[0].id, 1);
    EXPECT_EQ(got[1].id, 3);
}

TEST(RequestQueue, CloseRefusesPushesAndDrains)
{
    RequestQueue q(8, OverflowPolicy::Block);
    q.push(req(0));
    q.push(req(1));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_EQ(q.push(req(2)), AdmitResult::Closed);

    // Consumers drain the remaining items, then waitHead reports done.
    int model = -1;
    ASSERT_TRUE(q.waitHead(&model));
    std::vector<QueuedRequest> got;
    EXPECT_EQ(q.popModel(0, 10, &got), 2u);
    EXPECT_FALSE(q.waitHead(&model));
}

TEST(RequestQueue, CloseWakesBlockedProducer)
{
    RequestQueue q(1, OverflowPolicy::Block);
    q.push(req(0));
    std::atomic<bool> woke{false};
    std::thread producer([&] {
        EXPECT_EQ(q.push(req(1)), AdmitResult::Closed);
        woke = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    producer.join();
    EXPECT_TRUE(woke.load());
}

TEST(RequestQueue, WaitModelDeadlineReturnsCurrentCount)
{
    RequestQueue q(8, OverflowPolicy::Reject);
    q.push(req(0));
    // Target unreachable; short deadline: returns with whatever is
    // there instead of blocking forever.
    const double deadline = monotonicSeconds() + 0.02;
    EXPECT_EQ(q.waitModel(0, 5, deadline), 1u);
}

} // namespace
} // namespace flcnn
