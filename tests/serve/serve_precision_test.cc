/**
 * @file
 * Differential suite for the precision modes through the batched
 * server. The contract mirrors the fp32 differential suite with one
 * twist per mode:
 *
 *  - Within a precision, serving is still *bit-exact*: every output
 *    must equal the precision reference (runRange with the same
 *    NetPrecision) bit-for-bit at every worker count, batch size, and
 *    engine kind. Quantization changes the numbers once, at the conv
 *    boundaries — never differently per executor or thread count.
 *  - Against fp32, outputs stay within the documented error bounds:
 *    int8 within 5e-2 absolute and fp16 within 5e-3 on these O(1)
 *    activations (measured deviations are orders of magnitude
 *    smaller; see README "Precision").
 *
 * Grids: AlexNet prefix and VGG-E first five convs, workers {1, 2, 8}
 * x batch {1, 3, 8}, reduced spatial scale; the full-resolution
 * networks run once each. SIMD on/off coverage comes from CI building
 * this suite in both configurations.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "nn/precision.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "serve/server.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

Network
alexPrefixScaled(int hw)
{
    Network net("alex-prefix", Shape{3, hw, hw});
    net.add(LayerSpec::conv("conv1", 96, 11, 4));
    net.add(LayerSpec::relu("relu1"));
    net.addMaxPool("pool1", 3, 2);
    net.add(LayerSpec::padding("conv2_pad", 2));
    net.add(LayerSpec::conv("conv2", 256, 5, 1, 2));
    net.add(LayerSpec::relu("relu2"));
    return net;
}

Network
vggFiveScaled(int hw)
{
    Network net("vggE-first5", Shape{3, hw, hw});
    net.addConvBlock("conv1_1", 64, 3, 1, 1);
    net.addConvBlock("conv1_2", 64, 3, 1, 1);
    net.addMaxPool("pool1", 2, 2);
    net.addConvBlock("conv2_1", 128, 3, 1, 1);
    net.addConvBlock("conv2_2", 128, 3, 1, 1);
    net.addMaxPool("pool2", 2, 2);
    net.addConvBlock("conv3_1", 256, 3, 1, 1);
    return net;
}

/** Absolute error bound vs the fp32 reference (see file comment). */
double
absBound(Precision mode)
{
    return mode == Precision::Int8 ? 5e-2 : 5e-3;
}

/**
 * Serve @p requests images under @p mode and check both contracts:
 * bit-equality against the precision reference, bounded deviation
 * against the fp32 reference.
 */
void
runPrecisionDifferential(const Network &net, Precision mode, int workers,
                         int batch_max, int requests, EngineKind engine)
{
    SCOPED_TRACE(std::string(net.name()) + " " + precisionName(mode) +
                 " workers=" + std::to_string(workers) + " batch=" +
                 std::to_string(batch_max) + " engine=" +
                 engineKindName(engine));

    Rng wrng(7);
    NetworkWeights weights(net, wrng);
    const NetPrecision prec =
        NetPrecision::calibrate(net, weights, mode);

    constexpr int kPool = 4;
    std::vector<Tensor> inputs;
    std::vector<Tensor> expected;  // precision reference (bit-exact)
    std::vector<Tensor> fp32ref;   // plain reference (bounded)
    Rng irng(11);
    const int last = net.numLayers() - 1;
    for (int i = 0; i < kPool; i++) {
        inputs.emplace_back(net.inputShape());
        inputs.back().fillRandom(irng);
        expected.push_back(
            runRange(net, weights, inputs.back(), 0, last, &prec));
        fp32ref.push_back(
            runRange(net, weights, inputs.back(), 0, last));
    }

    ServeConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = 64;
    cfg.policy = OverflowPolicy::Block;
    cfg.batch.maxBatch = batch_max;
    cfg.engine = engine;
    cfg.warmup = false;

    InferenceServer server(cfg);
    server.addModel(net.name(), net, weights, 0, -1, &prec);
    server.start();

    std::vector<RequestHandlePtr> handles;
    for (int i = 0; i < requests; i++)
        handles.push_back(
            server.submit(0, Tensor(inputs[i % kPool])).handle);
    for (int i = 0; i < requests; i++) {
        ASSERT_EQ(handles[i]->wait(), RequestStatus::Ok);
        const Tensor &out = handles[i]->output();
        EXPECT_TRUE(tensorsEqual(expected[i % kPool], out))
            << "request " << i
            << " diverged from the precision reference";
        const CompareResult cr =
            compareTensors(fp32ref[i % kPool], out, 0.0, absBound(mode));
        EXPECT_TRUE(cr.match) << "request " << i << " vs fp32: max abs "
                              << cr.maxAbsDiff;
    }
    server.drainAndStop();
}

TEST(ServePrecision, Int8AlexNetPrefixGrid)
{
    Network net = alexPrefixScaled(67);
    for (int workers : {1, 2, 8})
        for (int batch : {1, 3, 8})
            runPrecisionDifferential(net, Precision::Int8, workers,
                                     batch, 10, EngineKind::LineBuffer);
}

TEST(ServePrecision, Int8VggFirstFiveGrid)
{
    Network net = vggFiveScaled(40);
    for (int workers : {1, 2, 8})
        for (int batch : {1, 3, 8})
            runPrecisionDifferential(net, Precision::Int8, workers,
                                     batch, 10, EngineKind::Fused);
}

TEST(ServePrecision, Fp16AlexNetPrefixGrid)
{
    Network net = alexPrefixScaled(67);
    for (int workers : {1, 2, 8})
        for (int batch : {1, 3, 8})
            runPrecisionDifferential(net, Precision::Fp16, workers,
                                     batch, 10, EngineKind::LineBuffer);
}

TEST(ServePrecision, Fp16VggFirstFiveGrid)
{
    Network net = vggFiveScaled(40);
    for (int workers : {1, 2, 8})
        for (int batch : {1, 3, 8})
            runPrecisionDifferential(net, Precision::Fp16, workers,
                                     batch, 10, EngineKind::Fused);
}

TEST(ServePrecision, EveryEngineKindMatchesEveryMode)
{
    Network net = alexPrefixScaled(67);
    for (Precision mode : {Precision::Int8, Precision::Fp16})
        for (EngineKind kind :
             {EngineKind::Reference, EngineKind::Fused,
              EngineKind::LineBuffer, EngineKind::Recompute})
            runPrecisionDifferential(net, mode, 2, 3, 6, kind);
}

TEST(ServePrecision, FullScaleAlexNetPrefixInt8)
{
    Network net = alexnetFusedPrefix();
    runPrecisionDifferential(net, Precision::Int8, 2, 3, 6,
                             EngineKind::LineBuffer);
}

TEST(ServePrecision, FullScaleVggFirstFiveInt8)
{
    Network net = vggEPrefix(5);
    runPrecisionDifferential(net, Precision::Int8, 2, 8, 4,
                             EngineKind::LineBuffer);
}

} // namespace
} // namespace flcnn
