/**
 * @file
 * Cross-module integration: the full designer workflow (explore → pick
 * → execute → verify), cross-checks between independent execution
 * paths (pyramid executor, line buffer, emitted HLS, tiled baseline),
 * and zoo networks exercised end to end at reduced scale.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "accel/baseline_accel.hh"
#include "accel/fused_accel.hh"
#include "accel/partition_executor.hh"
#include "common/thread_pool.hh"
#include "fusion/line_buffer_executor.hh"
#include "fusion/recompute_executor.hh"
#include "hls/emitter.hh"
#include "model/explorer.hh"
#include "model/transfer.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "obs/metrics.hh"
#include "sim/trace.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

TEST(EndToEnd, ExploreThenExecuteTheParetoFront)
{
    // Designer flow: sweep the space, then actually run every
    // Pareto-optimal partition and confirm the model's transfer
    // numbers are what the executors move.
    Network net("e2e", Shape{3, 24, 24});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addConvBlock("c2", 6, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c3", 8, 3, 1, 1);

    Rng wrng(81);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(82);
    input.fillRandom(irng);
    Tensor ref = runRange(net, weights, input, 0,
                          net.stages().back().last);

    auto res = exploreFusionSpace(net);
    ASSERT_GE(res.front.size(), 2u);
    for (const DesignPoint &p : res.front) {
        PartitionExecutor exec(net, weights, p.partition);
        PartitionRunStats stats;
        Tensor out = exec.run(input, &stats);
        EXPECT_TRUE(tensorsEqual(ref, out))
            << partitionStr(p.partition);
        EXPECT_EQ(stats.totalDramBytes(), p.transferBytes)
            << partitionStr(p.partition);
    }
}

TEST(EndToEnd, FourIndependentExecutionPathsAgree)
{
    // Reference, pyramid-fused, line-buffered, and tiled-baseline are
    // four structurally different evaluations of the same network;
    // all must agree bit-exactly.
    Rng rng(83);
    for (int trial = 0; trial < 8; trial++) {
        Network net = randomFusableNet(rng);
        if (net.convLayers().empty())
            continue;
        int last = net.numLayers() - 1;
        Rng wrng(trial + 900);
        NetworkWeights weights(net, wrng);
        Tensor input(net.inputShape());
        Rng irng(trial + 1900);
        input.fillRandom(irng);

        Tensor ref = runRange(net, weights, input, 0, last);
        FusedExecutor fx(net, weights, TilePlan(net, 0, last));
        LineBufferExecutor lb(net, weights, 0, last);
        BaselineAccelerator base(net, weights,
                                 BaselineConfig{2, 2, 5, 5});

        EXPECT_TRUE(tensorsEqual(ref, fx.run(input))) << net.str();
        EXPECT_TRUE(tensorsEqual(ref, lb.run(input))) << net.str();
        // The baseline accelerator covers the fusable stage prefix.
        int prefix_last = net.stages().back().last;
        Tensor pref = runRange(net, weights, input, 0, prefix_last);
        EXPECT_TRUE(tensorsEqual(pref, base.run(input))) << net.str();
    }
}

TEST(EndToEnd, EmittedHlsAgreesWithFusedAccelerator)
{
    // The generated HLS source is a fifth, externally-compiled
    // execution path.
    Network net("e2ehls", Shape{3, 16, 16});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c2", 5, 3, 1, 1);
    const int last = net.numLayers() - 1;

    Rng wrng(84);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(85);
    input.fillRandom(irng);

    FusedExecutor fx(net, weights, TilePlan(net, 0, last));
    Tensor fused = fx.run(input);

    std::string dir = ::testing::TempDir() + "flcnn_e2e_hls";
    ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
    std::ofstream(dir + "/accel.cc") << emitFusedHls(net, 0, last, {});
    auto arena = packWeightsForHls(net, weights, 0, last);
    {
        std::ofstream f(dir + "/input.bin", std::ios::binary);
        f.write(reinterpret_cast<const char *>(input.data()),
                static_cast<std::streamsize>(input.elems() * 4));
        std::ofstream g(dir + "/weights.bin", std::ios::binary);
        g.write(reinterpret_cast<const char *>(arena.data()),
                static_cast<std::streamsize>(arena.size() * 4));
    }
    ASSERT_EQ(std::system(("c++ -O2 -std=c++17 -DFLCNN_HLS_TESTBENCH '" +
                           dir + "/accel.cc' -o '" + dir + "/accel'")
                              .c_str()),
              0);
    ASSERT_EQ(std::system(("cd '" + dir + "' && ./accel").c_str()), 0);

    Tensor out(net.outShape(last));
    std::ifstream f(dir + "/output.bin", std::ios::binary);
    f.read(reinterpret_cast<char *>(out.data()),
           static_cast<std::streamsize>(out.elems() * 4));
    ASSERT_EQ(f.gcount(), static_cast<std::streamsize>(out.elems() * 4));
    EXPECT_TRUE(tensorsEqual(fused, out));
}

TEST(EndToEnd, GoogLeNetStemFusesCorrectly)
{
    // Large-stride 7x7 conv, overlapping pools, and a 1x1 reduce in
    // one pyramid (reduced spatial scale to keep the test fast).
    Network net("stem", Shape{3, 56, 56});
    net.add(LayerSpec::padding("conv1_pad", 3));
    net.add(LayerSpec::conv("conv1", 8, 7, 2));
    net.add(LayerSpec::relu("relu1"));
    net.add(LayerSpec::padding("pool1_pad", 1));
    net.addMaxPool("pool1", 3, 2);
    net.add(LayerSpec::conv("conv2_reduce", 8, 1, 1));
    net.add(LayerSpec::relu("relu2r"));
    net.addConvBlock("conv2", 12, 3, 1, 1);
    const int last = net.numLayers() - 1;

    Rng wrng(86);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(87);
    input.fillRandom(irng);

    Tensor ref = runRange(net, weights, input, 0, last);
    FusedExecutor fx(net, weights, TilePlan(net, 0, last));
    fx.setTrackCoverage(true);
    Tensor out = fx.run(input);
    EXPECT_TRUE(tensorsEqual(ref, out));
    EXPECT_EQ(fx.coverageReport(), "");
}

TEST(EndToEnd, AlexNetWithLrnAndClassifierRuns)
{
    // The full zoo network including the layers fusion excludes; the
    // reference must still evaluate it end to end (reduced width via
    // the grouped option off to keep runtime sane is not possible for
    // AlexNet's fixed input, so just check shapes through the FC tail
    // on a a spatially-reduced clone).
    Network net("alex-cls", Shape{3, 67, 67});
    net.add(LayerSpec::conv("conv1", 8, 11, 4));
    net.add(LayerSpec::relu("relu1"));
    net.add(LayerSpec::lrn("lrn1"));
    net.addMaxPool("pool1", 3, 2);
    net.add(LayerSpec::fullyConnected("fc", 10));

    Rng wrng(88);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(89);
    input.fillRandom(irng);
    Tensor out = runNetwork(net, weights, input);
    EXPECT_EQ(out.shape(), (Shape{10, 1, 1}));

    // The fusable prefix (everything before the FC) still fuses.
    const auto &stages = net.stages();
    ASSERT_EQ(stages.size(), 2u);
    Tensor pref = runRange(net, weights, input, 0, stages.back().last);
    FusedExecutor fx(net, weights,
                     TilePlan(net, 0, stages.back().last));
    EXPECT_TRUE(tensorsEqual(pref, fx.run(input)));
}

/** Restores the global pool width when a test returns or fails. */
struct ThreadCountGuard
{
    explicit ThreadCountGuard(int n) { ThreadPool::setGlobalThreads(n); }
    ~ThreadCountGuard() { ThreadPool::setGlobalThreads(0); }
};

TEST(Observability, ExecutorMetricSumsMatchRunStats)
{
    // The registry's per-layer breakdown must reproduce the flat run
    // statistics bit-exactly — at every thread count, since the
    // tallies live outside the parallel regions.
    Network net("obs1", Shape{3, 24, 24});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c2", 6, 3, 1, 1);

    Rng wrng(95);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(96);
    input.fillRandom(irng);
    const int last = net.numLayers() - 1;

    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadCountGuard guard(threads);

        // Reuse model: metrics, and the trace sink must agree with
        // both the metrics and the counted stats.
        FusedExecutor fx(net, weights, TilePlan(net, 0, last));
        MetricsRegistry freg;
        TraceRecorder rec(false);
        fx.setMetrics(&freg);
        fx.setTraceSink(rec.sink());
        FusedRunStats fs;
        fx.run(input, &fs);
        EXPECT_EQ(freg.sumCounters("dram_read_bytes"), fs.loadedBytes);
        EXPECT_EQ(freg.sumCounters("dram_write_bytes"), fs.storedBytes);
        EXPECT_EQ(freg.sumCounters("mults"), fs.ops.mults);
        EXPECT_EQ(freg.sumCounters("adds"), fs.ops.adds);
        EXPECT_EQ(freg.sumCounters("compares"), fs.ops.compares);
        EXPECT_EQ(rec.readBytes(), fs.loadedBytes);
        EXPECT_EQ(rec.writeBytes(), fs.storedBytes);

        // Recompute model.
        RecomputeExecutor rx(net, weights, TilePlan(net, 0, last));
        MetricsRegistry rreg;
        rx.setMetrics(&rreg);
        RecomputeRunStats rs;
        rx.run(input, &rs);
        EXPECT_EQ(rreg.sumCounters("dram_read_bytes"), rs.loadedBytes);
        EXPECT_EQ(rreg.sumCounters("dram_write_bytes"), rs.storedBytes);
        EXPECT_EQ(rreg.sumCounters("mults"), rs.ops.mults);
        EXPECT_EQ(rreg.sumCounters("adds"), rs.ops.adds);
        EXPECT_EQ(rreg.sumCounters("compares"), rs.ops.compares);

        // Line buffer model (ops attributed at the tally sites).
        LineBufferExecutor lb(net, weights, 0, last);
        MetricsRegistry lreg;
        lb.setMetrics(&lreg);
        LineBufferStats ls;
        lb.run(input, &ls);
        EXPECT_EQ(lreg.sumCounters("dram_read_bytes"), ls.loadedBytes);
        EXPECT_EQ(lreg.sumCounters("dram_write_bytes"), ls.storedBytes);
        EXPECT_EQ(lreg.sumCounters("mults"), ls.ops.mults);
        EXPECT_EQ(lreg.sumCounters("adds"), ls.ops.adds);
        EXPECT_EQ(lreg.sumCounters("compares"), ls.ops.compares);
    }
}

TEST(Observability, AcceleratorMetricSumsMatchAccelStats)
{
    // Accelerator models add the weight stream and schedule cycles on
    // top of the executor's feature-map traffic; one registry must
    // still sum to the AccelStats totals with no double counting.
    Network net("obs2", Shape{3, 24, 24});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c2", 6, 3, 1, 1);

    Rng wrng(97);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(98);
    input.fillRandom(irng);
    const int last = net.numLayers() - 1;

    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadCountGuard guard(threads);

        BaselineAccelerator base(net, weights,
                                 BaselineConfig{2, 2, 8, 8});
        MetricsRegistry breg;
        base.setMetrics(&breg);
        AccelStats bs;
        base.run(input, &bs);
        EXPECT_EQ(breg.sumCounters("dram_read_bytes"),
                  bs.dramReadBytes);
        EXPECT_EQ(breg.sumCounters("dram_write_bytes"),
                  bs.dramWriteBytes);
        EXPECT_EQ(breg.sumCounters("compute_cycles"),
                  bs.computeCycles);

        FusedPipelineConfig fcfg =
            balanceFusedPipeline(net, 0, last, 100);
        FusedAccelerator fused(net, weights, 0, last, fcfg);
        MetricsRegistry areg;
        fused.setMetrics(&areg);
        AccelStats as;
        fused.run(input, &as);
        EXPECT_EQ(areg.sumCounters("dram_read_bytes"),
                  as.dramReadBytes);
        EXPECT_EQ(areg.sumCounters("dram_write_bytes"),
                  as.dramWriteBytes);
        EXPECT_EQ(areg.sumCounters("compute_cycles"),
                  as.computeCycles);
        EXPECT_EQ(areg.counter("", "makespan_cycles"),
                  as.makespanCycles);
    }
}

TEST(Observability, PartitionExecutorScopesMetricsByGroup)
{
    Network net("obs3", Shape{3, 24, 24});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c2", 6, 3, 1, 1);

    Rng wrng(99);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(100);
    input.fillRandom(irng);

    // Two groups: the first stage alone, then everything after it.
    const auto &stages = net.stages();
    ASSERT_GE(stages.size(), 2u);
    Partition part{StageGroup{0, 0},
                   StageGroup{1, static_cast<int>(stages.size()) - 1}};
    PartitionExecutor exec(net, weights, part);
    MetricsRegistry reg;
    exec.setMetrics(&reg);
    PartitionRunStats stats;
    exec.run(input, &stats);

    EXPECT_EQ(reg.sumCounters("dram_read_bytes"), stats.dramReadBytes);
    EXPECT_EQ(reg.sumCounters("dram_write_bytes"),
              stats.dramWriteBytes);
    bool saw_g0 = false, saw_g1 = false;
    for (const std::string &scope : reg.scopes()) {
        if (scope.rfind("group:0:", 0) == 0)
            saw_g0 = true;
        if (scope.rfind("group:1:", 0) == 0)
            saw_g1 = true;
        EXPECT_TRUE(scope.rfind("group:", 0) == 0)
            << "unprefixed scope: " << scope;
    }
    EXPECT_TRUE(saw_g0);
    EXPECT_TRUE(saw_g1);
}

TEST(EndToEnd, AdvisorPickIsExecutable)
{
    // partition_advisor's logic: best front point under a budget must
    // be runnable and meet its own numbers.
    Network net("adv", Shape{3, 20, 20});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c2", 8, 3, 1, 1);

    auto res = exploreFusionSpace(net);
    const DesignPoint *pick = res.bestUnderStorage(4 * 1024);
    ASSERT_NE(pick, nullptr);

    Rng wrng(90);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(91);
    input.fillRandom(irng);
    PartitionExecutor exec(net, weights, pick->partition);
    PartitionRunStats stats;
    Tensor out = exec.run(input, &stats);
    Tensor ref = runRange(net, weights, input, 0,
                          net.stages().back().last);
    EXPECT_TRUE(tensorsEqual(ref, out));
    EXPECT_EQ(stats.totalDramBytes(), pick->transferBytes);
}

} // namespace
} // namespace flcnn
