/** @file Bridges from simulator structures to Chrome trace tracks. */

#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "sim/pipeline.hh"
#include "sim/trace.hh"

namespace flcnn {
namespace {

int
countOccurrences(const std::string &hay, const std::string &needle)
{
    int n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        n++;
    return n;
}

TEST(Timeline, ScheduleWithSlotsEmitsPerCellSpans)
{
    auto sched = schedulePyramidPipeline(
        3, 2, [](int64_t, int) { return int64_t{4}; }, true);
    ChromeTrace tr;
    appendScheduleTrace(tr, sched, {"load", "conv"}, 1, "pipeline");
    std::string js = tr.json();
    // 3 pyramids x 2 stages, all nonzero.
    EXPECT_EQ(countOccurrences(js, "\"pyramid "), 6);
    EXPECT_NE(js.find("\"load\""), std::string::npos);
    EXPECT_NE(js.find("\"conv\""), std::string::npos);
}

TEST(Timeline, ScheduleOverBudgetFallsBackToAggregates)
{
    auto sched = schedulePyramidPipeline(
        100, 2, [](int64_t, int) { return int64_t{4}; }, true);
    ChromeTrace tr;
    appendScheduleTrace(tr, sched, {}, 1, "pipeline",
                        /*max_slot_events=*/10);
    std::string js = tr.json();
    EXPECT_EQ(countOccurrences(js, "\"pyramid "), 0);
    EXPECT_EQ(countOccurrences(js, "(aggregate)"), 2);
    EXPECT_NE(js.find("\"busy_cycles\":400"), std::string::npos);
}

TEST(Timeline, ScheduleWithoutSlotsUsesAggregates)
{
    auto sched = schedulePyramidPipeline(
        5, 3, [](int64_t, int) { return int64_t{2}; }, false);
    ChromeTrace tr;
    appendScheduleTrace(tr, sched, {}, 1, "pipeline");
    EXPECT_EQ(countOccurrences(tr.json(), "(aggregate)"), 3);
}

TEST(Timeline, DramCounterTrackEndsOnExactTotals)
{
    TraceRecorder rec;
    for (int i = 0; i < 1000; i++)
        rec.record(DramAccess{i % 3 == 0, 64u * static_cast<uint64_t>(i),
                              i + 1});
    ChromeTrace tr;
    appendDramCounterTrack(tr, rec, 2, "dram", /*max_samples=*/7);
    std::string js = tr.json();
    // Strided down, but the last sample closes on the exact sums.
    EXPECT_LE(countOccurrences(js, "\"read_bytes\""), 7);
    EXPECT_NE(js.find("\"read_bytes\":" +
                      std::to_string(rec.readBytes())),
              std::string::npos);
    EXPECT_NE(js.find("\"write_bytes\":" +
                      std::to_string(rec.writeBytes())),
              std::string::npos);
}

TEST(Timeline, DramCounterTrackWithoutLogWarnsAndEmitsNothing)
{
    TraceRecorder rec(false);
    rec.record(DramAccess{false, 0, 8});
    ChromeTrace tr;
    appendDramCounterTrack(tr, rec, 2, "dram");
    EXPECT_EQ(tr.numEvents(), 0u);
}

TEST(Timeline, DramCountersMirrorRegistrySums)
{
    MetricsRegistry reg;
    reg.addCounter("layer:0:c1", "dram_read_bytes", 1000);
    reg.addCounter("layer:1:c2", "dram_write_bytes", 500);
    reg.addCounter("layer:2:c3", "mults", 99);  // not a dram scope
    ChromeTrace tr;
    appendDramCounters(tr, reg, 2);
    std::string js = tr.json();
    EXPECT_NE(js.find("dram/layer:0:c1"), std::string::npos);
    EXPECT_NE(js.find("dram/layer:1:c2"), std::string::npos);
    EXPECT_EQ(js.find("dram/layer:2:c3"), std::string::npos);
    EXPECT_EQ(countOccurrences(js, "\"ph\":\"C\""), 2);
}

TEST(Timeline, ThreadPoolScopeRecordsChunks)
{
    std::vector<int> touched(64, 0);
    ThreadPoolTraceScope scope;
    parallelFor(0, 64, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; i++)
            touched[static_cast<size_t>(i)] = 1;
    });
    EXPECT_GT(scope.numChunks(), 0u);
    ChromeTrace tr;
    scope.flush(tr, 3, "pool");
    std::string js = tr.json();
    EXPECT_NE(js.find("\"chunk [0, "), std::string::npos);
    EXPECT_NE(js.find("threadpool"), std::string::npos);
    for (int v : touched)
        EXPECT_EQ(v, 1);
}

TEST(Timeline, ThreadPoolScopeCapCountsDrops)
{
    ThreadPoolTraceScope scope(/*max_events=*/1);
    for (int rep = 0; rep < 8; rep++)
        parallelFor(0, 1000, [](int64_t, int64_t) {}, /*grain=*/1);
    EXPECT_LE(scope.numChunks(), 1u);
    EXPECT_GT(scope.dropped(), 0);
    ChromeTrace tr;
    scope.flush(tr, 3, "pool");
    EXPECT_NE(tr.json().find("dropped_chunks"), std::string::npos);
}

TEST(Timeline, WriteFusedTraceFileComposesAllTracks)
{
    auto sched = schedulePyramidPipeline(
        2, 2, [](int64_t, int) { return int64_t{3}; }, true);
    MetricsRegistry reg;
    reg.addCounter("layer:0:c1", "dram_read_bytes", 77);
    std::string path =
        ::testing::TempDir() + "flcnn_timeline_test.json";
    ASSERT_TRUE(writeFusedTraceFile(path, "unit", sched, {"a", "b"},
                                    &reg, nullptr, nullptr,
                                    {{"dram_read_bytes", argI(77)}}));
    std::remove(path.c_str());
}

} // namespace
} // namespace flcnn
