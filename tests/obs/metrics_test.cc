/** @file MetricsRegistry: scoped counters/gauges and their JSON form. */

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace flcnn {
namespace {

TEST(Metrics, CountersAccumulate)
{
    MetricsRegistry reg;
    reg.addCounter("layer:0:c1", "dram_read_bytes", 100);
    reg.addCounter("layer:0:c1", "dram_read_bytes", 28);
    reg.addCounter("layer:1:c2", "dram_read_bytes", 7);
    EXPECT_EQ(reg.counter("layer:0:c1", "dram_read_bytes"), 128);
    EXPECT_EQ(reg.counter("layer:1:c2", "dram_read_bytes"), 7);
    EXPECT_EQ(reg.sumCounters("dram_read_bytes"), 135);
    EXPECT_EQ(reg.counter("layer:2:c3", "dram_read_bytes"), 0);
    EXPECT_EQ(reg.sumCounters("no_such_counter"), 0);
}

TEST(Metrics, GaugesSetAndAdd)
{
    MetricsRegistry reg;
    reg.addGauge("", "wall_seconds", 0.5);
    reg.addGauge("", "wall_seconds", 0.25);
    EXPECT_DOUBLE_EQ(reg.gauge("", "wall_seconds"), 0.75);
    reg.setGauge("", "tile_bytes", 4096.0);
    reg.setGauge("", "tile_bytes", 2048.0);
    EXPECT_DOUBLE_EQ(reg.gauge("", "tile_bytes"), 2048.0);
    EXPECT_DOUBLE_EQ(reg.sumGauges("wall_seconds"), 0.75);
    EXPECT_DOUBLE_EQ(reg.gauge("missing", "wall_seconds"), 0.0);
}

TEST(MetricsDeath, MixedKindReusePanics)
{
    // A (scope, name) is one metric; reusing it with the other kind
    // is a programming error, not a silent second value.
    MetricsRegistry reg;
    reg.addCounter("s", "x", 3);
    EXPECT_DEATH(reg.setGauge("s", "x", 9.5), "kind");
    MetricsRegistry reg2;
    reg2.setGauge("s", "x", 9.5);
    EXPECT_DEATH(reg2.addCounter("s", "x", 3), "kind");
}

TEST(Metrics, ScopesKeepFirstAppearanceOrder)
{
    MetricsRegistry reg;
    reg.addCounter("b", "n", 1);
    reg.addCounter("a", "n", 1);
    reg.addCounter("b", "m", 1);
    auto scopes = reg.scopes();
    ASSERT_EQ(scopes.size(), 2u);
    EXPECT_EQ(scopes[0], "b");
    EXPECT_EQ(scopes[1], "a");
}

TEST(Metrics, CanonicalScopeFormats)
{
    EXPECT_EQ(MetricsRegistry::layerScope(3, "conv2"), "layer:3:conv2");
    EXPECT_EQ(MetricsRegistry::stageScope(0, "load"), "stage:0:load");
    EXPECT_EQ(MetricsRegistry::groupPrefix(2), "group:2:");
}

TEST(Metrics, JsonRendersCountersAsIntegers)
{
    MetricsRegistry reg;
    // A value above 2^53 would lose bits through a double round trip.
    reg.addCounter("layer:0:c1", "dram_read_bytes",
                   (int64_t{1} << 53) + 1);
    reg.setGauge("layer:0:c1", "wall_seconds", 1.5);
    std::string js = reg.json();
    EXPECT_NE(js.find("\"layer:0:c1\""), std::string::npos);
    EXPECT_NE(js.find("9007199254740993"), std::string::npos);
    EXPECT_NE(js.find("wall_seconds"), std::string::npos);
}

TEST(Metrics, JsonGuardsNonFiniteGauges)
{
    MetricsRegistry reg;
    reg.setGauge("", "ratio", 1.0 / 0.0);
    std::string js = reg.json();
    EXPECT_EQ(js.find("inf"), std::string::npos);
    EXPECT_NE(js.find("null"), std::string::npos);
}

TEST(Metrics, ClearEmpties)
{
    MetricsRegistry reg;
    reg.addCounter("s", "n", 1);
    EXPECT_FALSE(reg.empty());
    reg.clear();
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.counter("s", "n"), 0);
}

} // namespace
} // namespace flcnn
