/** @file Chrome trace-event emitter: JSON shape and literal fidelity. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_event.hh"

namespace flcnn {
namespace {

TEST(TraceArgs, LiteralsRenderExactly)
{
    // int64 beyond 2^53 must survive as an integer literal.
    EXPECT_EQ(argI((int64_t{1} << 53) + 1), "9007199254740993");
    EXPECT_EQ(argI(-42), "-42");
    EXPECT_EQ(argS("a \"b\"\n"), "\"a \\\"b\\\"\\n\"");
    // Non-finite doubles are not valid JSON literals.
    EXPECT_EQ(argF(1.0 / 0.0), "null");
    EXPECT_EQ(argF(0.0 / 0.0), "null");
    EXPECT_DOUBLE_EQ(std::stod(argF(0.5)), 0.5);
}

TEST(ChromeTrace, CompleteEventShape)
{
    ChromeTrace tr;
    tr.setProcessName(1, "pipeline");
    tr.setThreadName(1, 0, "load");
    tr.completeEvent("pyramid 0", "pipeline", 1, 0, 10.0, 5.0,
                     {{"pyramid", argI(0)}});
    std::string js = tr.json();
    EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(js.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(js.find("\"process_name\""), std::string::npos);
    EXPECT_NE(js.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(js.find("\"pyramid 0\""), std::string::npos);
    EXPECT_NE(js.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(ChromeTrace, CounterEventOmitsTid)
{
    ChromeTrace tr;
    tr.counterEvent("dram/layer:0:c1", 2, 0.0,
                    {{"read_bytes", argI(128)},
                     {"write_bytes", argI(0)}});
    std::string js = tr.json();
    EXPECT_NE(js.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(js.find("\"read_bytes\":128"), std::string::npos);
    // Counter tracks belong to a process, not a thread.
    EXPECT_EQ(js.find("\"tid\""), std::string::npos);
}

TEST(ChromeTrace, OtherDataAppearsWhenSet)
{
    ChromeTrace tr;
    tr.completeEvent("e", "c", 1, 0, 0.0, 1.0);
    EXPECT_EQ(tr.json().find("otherData"), std::string::npos);
    tr.setOther("dram_read_bytes", argI(756992));
    std::string js = tr.json();
    EXPECT_NE(js.find("\"otherData\""), std::string::npos);
    EXPECT_NE(js.find("\"dram_read_bytes\": 756992"), std::string::npos);
}

TEST(ChromeTrace, JsonIsStructurallyBalanced)
{
    ChromeTrace tr;
    tr.setProcessName(1, "p \"quoted\"");
    for (int i = 0; i < 10; i++)
        tr.completeEvent("e" + std::to_string(i), "cat", 1, i % 3,
                         i * 2.0, 1.0, {{"i", argI(i)}});
    tr.counterEvent("cnt", 1, 0.0, {{"v", argF(0.25)}});
    tr.setOther("label", argS("test"));
    std::string js = tr.json();
    int depth = 0;
    bool in_str = false;
    for (size_t i = 0; i < js.size(); i++) {
        char c = js[i];
        if (in_str) {
            if (c == '\\')
                i++;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{' || c == '[')
            depth++;
        else if (c == '}' || c == ']') {
            depth--;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_str);
}

TEST(ChromeTrace, WriteFileRoundTrips)
{
    ChromeTrace tr;
    tr.completeEvent("span", "cat", 1, 0, 0.0, 2.5);
    std::string path = ::testing::TempDir() + "flcnn_trace_test.json";
    ASSERT_TRUE(tr.writeFile(path));
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_EQ(ss.str(), tr.json());
    std::remove(path.c_str());
}

TEST(ChromeTrace, WriteFileToBadPathFails)
{
    ChromeTrace tr;
    tr.completeEvent("span", "cat", 1, 0, 0.0, 1.0);
    EXPECT_FALSE(tr.writeFile("/nonexistent-dir/trace.json"));
}

} // namespace
} // namespace flcnn
