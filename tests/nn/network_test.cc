/** @file Network container: shape chaining, stages, weight accounting. */

#include <gtest/gtest.h>

#include "nn/network.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(Network, ShapeChaining)
{
    Network net("t", Shape{3, 32, 32});
    net.add(LayerSpec::conv("c1", 8, 5, 1));
    net.add(LayerSpec::pool("p1", 2, 2));
    EXPECT_EQ(net.inShape(0), (Shape{3, 32, 32}));
    EXPECT_EQ(net.outShape(0), (Shape{8, 28, 28}));
    EXPECT_EQ(net.inShape(1), (Shape{8, 28, 28}));
    EXPECT_EQ(net.outputShape(), (Shape{8, 14, 14}));
}

TEST(Network, ConvBlockExpandsToPadConvRelu)
{
    Network net("t", Shape{3, 8, 8});
    net.addConvBlock("c1", 4, 3, 1, 1);
    ASSERT_EQ(net.numLayers(), 3);
    EXPECT_EQ(net.layer(0).kind, LayerKind::Pad);
    EXPECT_EQ(net.layer(1).kind, LayerKind::Conv);
    EXPECT_EQ(net.layer(2).kind, LayerKind::ReLU);
    EXPECT_EQ(net.outputShape(), (Shape{4, 8, 8}));
}

TEST(Network, ConvBlockWithoutPadOmitsPadLayer)
{
    Network net("t", Shape{3, 8, 8});
    net.addConvBlock("c1", 4, 3, 1, 0);
    ASSERT_EQ(net.numLayers(), 2);
    EXPECT_EQ(net.layer(0).kind, LayerKind::Conv);
}

TEST(Network, StageExtractionGroupsCompanions)
{
    // pad+conv+relu forms one stage; pool its own stage.
    Network net("t", Shape{3, 16, 16});
    net.addConvBlock("c1", 4, 3, 1, 1);   // layers 0,1,2
    net.addMaxPool("p1", 2, 2);           // layer 3
    net.addConvBlock("c2", 8, 3, 1, 1);   // layers 4,5,6

    const auto &stages = net.stages();
    ASSERT_EQ(stages.size(), 3u);
    EXPECT_EQ(stages[0].first, 0);
    EXPECT_EQ(stages[0].windowed, 1);
    EXPECT_EQ(stages[0].last, 2);
    EXPECT_EQ(stages[1].first, 3);
    EXPECT_EQ(stages[1].last, 3);
    EXPECT_EQ(stages[2].first, 4);
    EXPECT_EQ(stages[2].windowed, 5);
    EXPECT_EQ(stages[2].last, 6);
}

TEST(Network, StageOfMapsLayersToStages)
{
    Network net("t", Shape{3, 16, 16});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    EXPECT_EQ(net.stageOf(0), 0);
    EXPECT_EQ(net.stageOf(2), 0);
    EXPECT_EQ(net.stageOf(3), 1);
}

TEST(Network, StagesStopAtNonFusableLayer)
{
    Network net("t", Shape{3, 12, 12});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::fullyConnected("f", 10));
    net.add(LayerSpec::relu("r"));
    ASSERT_EQ(net.stages().size(), 1u);
    EXPECT_EQ(net.stageOf(1), -1);
}

TEST(Network, AlexNetHasEightFusableStages)
{
    // Section V-B: "AlexNet has five convolutional layers and three
    // pooling layers; there are 128 possible combinations" = 2^(8-1).
    Network net = alexnet();
    EXPECT_EQ(net.stages().size(), 8u);
}

TEST(Network, VggFirstFivePrefixHasSevenStages)
{
    // "For VGG, we consider fusing the first five convolutional layers
    // and two pooling layers, giving 64 possible combinations" = 2^6.
    Network net = vggEPrefix(5);
    EXPECT_EQ(net.stages().size(), 7u);
}

TEST(Network, ConvSlots)
{
    Network net("t", Shape{3, 16, 16});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c2", 8, 3, 1, 1);
    ASSERT_EQ(net.convLayers().size(), 2u);
    EXPECT_EQ(net.convSlot(net.convLayers()[0]), 0);
    EXPECT_EQ(net.convSlot(net.convLayers()[1]), 1);
}

TEST(NetworkDeath, ConvSlotOnNonConvPanics)
{
    Network net("t", Shape{3, 16, 16});
    net.add(LayerSpec::pool("p", 2, 2));
    EXPECT_DEATH(net.convSlot(0), "not a convolution");
}

TEST(Network, WeightBytesInRange)
{
    Network net("t", Shape{3, 16, 16});
    net.add(LayerSpec::conv("c1", 4, 3, 1));   // 4*3*9 w + 4 b
    net.add(LayerSpec::pool("p1", 2, 2));
    net.add(LayerSpec::conv("c2", 8, 3, 1));   // 8*4*9 w + 8 b
    EXPECT_EQ(net.weightBytesInRange(0, 0), (4 * 3 * 9 + 4) * 4);
    EXPECT_EQ(net.weightBytesInRange(0, 2),
              (4 * 3 * 9 + 4 + 8 * 4 * 9 + 8) * 4);
    EXPECT_EQ(net.weightBytesInRange(1, 1), 0);
}

TEST(Network, GroupedConvWeightBytes)
{
    Network net("t", Shape{4, 16, 16});
    net.add(LayerSpec::conv("c1", 8, 3, 1, 2));  // 8 * (4/2) * 9 + 8
    EXPECT_EQ(net.weightBytesInRange(0, 0), (8 * 2 * 9 + 8) * 4);
}

TEST(NetworkDeath, IncompatibleLayerIsFatal)
{
    Network net("t", Shape{3, 4, 4});
    EXPECT_EXIT(net.add(LayerSpec::conv("c", 4, 9, 1)),
                ::testing::ExitedWithCode(1), "kernel larger");
}

TEST(Network, DescriptionMentionsEveryLayer)
{
    Network net = tinyNet();
    std::string s = net.str();
    EXPECT_NE(s.find("layer1"), std::string::npos);
    EXPECT_NE(s.find("layer2"), std::string::npos);
}


// ---------------------------------------------------------------------
// DAG graph API
// ---------------------------------------------------------------------

TEST(NetworkGraph, ChainIsAPathGraph)
{
    Network net = tinyNet();
    EXPECT_TRUE(net.isChain());
    EXPECT_TRUE(net.isPathRange(0, net.numLayers() - 1));
    EXPECT_EQ(net.predecessors(0), std::vector<int>{kInputNode});
    EXPECT_EQ(net.predecessors(1), std::vector<int>{0});
    EXPECT_EQ(net.soleInput(0), kInputNode);
    EXPECT_EQ(net.soleInput(1), 0);
    EXPECT_EQ(net.successors(0), std::vector<int>{1});
    EXPECT_TRUE(net.successors(1).empty());
    EXPECT_EQ(net.fanOut(0), 1);
    EXPECT_EQ(net.fanOut(1), 0);
}

TEST(NetworkGraph, SingleNodeGraph)
{
    // Regression for the chain-only predecessor sweep: a 1-node graph
    // has no layer i-1 to implicitly index.
    Network net("one", Shape{2, 5, 5});
    net.add(LayerSpec::conv("only", 3, 3, 1));
    EXPECT_TRUE(net.isChain());
    EXPECT_TRUE(net.isPathRange(0, 0));
    EXPECT_EQ(net.soleInput(0), kInputNode);
    EXPECT_TRUE(net.successors(0).empty());
    EXPECT_EQ(net.inShape(0), (Shape{2, 5, 5}));
    EXPECT_EQ(net.outputShape(), (Shape{3, 3, 3}));
}

TEST(NetworkGraph, TwoNodeGraphBuiltWithAddNode)
{
    Network net("two", Shape{2, 5, 5});
    int a = net.addNode(LayerSpec::conv("a", 3, 3, 1), {kInputNode});
    int b = net.addNode(LayerSpec::relu("b"), {a});
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_TRUE(net.isChain());
    EXPECT_EQ(net.soleInput(b), a);
    EXPECT_EQ(net.inShape(b), net.outShape(a));
}

TEST(NetworkGraph, TopoOrderIsInsertionOrder)
{
    Network net = residualBlock();
    std::vector<int> order = net.topoOrder();
    ASSERT_EQ(static_cast<int>(order.size()), net.numLayers());
    for (int i = 0; i < net.numLayers(); i++) {
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
        for (int p : net.predecessors(i))
            EXPECT_LT(p, i);
    }
}

TEST(NetworkGraph, ResidualBlockShapesAndJoin)
{
    Network net = residualBlock();
    EXPECT_FALSE(net.isChain());
    // The Add node joins the trunk output and the network input.
    int join = -1;
    for (int i = 0; i < net.numLayers(); i++) {
        if (net.layer(i).kind == LayerKind::Add)
            join = i;
    }
    ASSERT_GE(join, 0);
    EXPECT_EQ(net.predecessors(join).size(), 2u);
    EXPECT_EQ(net.outShape(join), net.inputShape());
    EXPECT_EQ(net.outputShape(), net.inputShape());
}

TEST(NetworkGraph, ConcatSumsChannels)
{
    Network net = inceptionJoin();
    EXPECT_FALSE(net.isChain());
    EXPECT_EQ(net.outputShape(), (Shape{10, 12, 12}));
    // The stem fans out to both branches.
    EXPECT_EQ(net.fanOut(0), 2);
}

TEST(NetworkGraph, PathRangeRejectsJoinAndEscape)
{
    Network net = residualBlock();
    // Whole network contains a join -> not a path.
    EXPECT_FALSE(net.isPathRange(0, net.numLayers() - 1));
    // The trunk [0, 4] is a path: the skip edge the Add consumes comes
    // from the network input, not from an interior trunk node.
    EXPECT_TRUE(net.isPathRange(0, 4));
    // inceptionJoin: the stem (node 0) fans out to node 1 and node 3,
    // so any interior range ending between them leaks an intermediate.
    Network inc = inceptionJoin();
    EXPECT_FALSE(inc.isPathRange(0, 2));
    EXPECT_TRUE(inc.isPathRange(1, 2));
}

TEST(NetworkGraph, StagesStopAtJoinAndFanOut)
{
    // Chain prefix stages keep working; extraction stops at the first
    // fan-out / join so no stage range crosses a DAG feature.
    Network net = residualBlock();
    for (const Stage &st : net.stages()) {
        EXPECT_TRUE(net.isPathRange(st.first, st.last));
        for (int i = st.first; i <= st.last; i++)
            EXPECT_FALSE(net.layer(i).multiInput());
    }
    Network inc = inceptionJoin();
    // The stem's stage may survive, but nothing beyond the fan-out.
    for (const Stage &st : inc.stages())
        EXPECT_LE(st.last, 0);
}

TEST(NetworkGraphDeath, AddRejectsMultiInputKinds)
{
    Network net("j", Shape{2, 4, 4});
    net.add(LayerSpec::relu("r"));
    EXPECT_EXIT(net.add(LayerSpec::eltwiseAdd("a")),
                ::testing::ExitedWithCode(1), "input edges");
}

TEST(NetworkGraphDeath, AddNodeValidatesEdges)
{
    Network net("j", Shape{2, 4, 4});
    int r = net.addNode(LayerSpec::relu("r"), {kInputNode});
    EXPECT_EXIT(net.addNode(LayerSpec::relu("fwd"), {5}),
                ::testing::ExitedWithCode(1), "does not exist");
    EXPECT_EXIT(net.addNode(LayerSpec::eltwiseAdd("dup"), {r, r}),
                ::testing::ExitedWithCode(1), "duplicate input edge");
    EXPECT_EXIT(
        net.addNode(LayerSpec::conv("two-in", 2, 3, 1), {r, kInputNode}),
        ::testing::ExitedWithCode(1), "exactly one input");
}

TEST(NetworkGraphDeath, SoleInputPanicsOnJoin)
{
    Network net("j", Shape{2, 4, 4});
    int r = net.addNode(LayerSpec::relu("r"), {kInputNode});
    int a = net.addNode(LayerSpec::eltwiseAdd("a"), {r, kInputNode});
    EXPECT_DEATH((void)net.soleInput(a), "joins");
}

TEST(NetworkGraphDeath, AddNodeShapeMismatchIsFatal)
{
    Network net("j", Shape{2, 4, 4});
    int c = net.addNode(LayerSpec::conv("c", 3, 3, 1), {kInputNode});
    // Add of {3,2,2} and the {2,4,4} input: shapes differ.
    EXPECT_EXIT(
        net.addNode(LayerSpec::eltwiseAdd("bad"), {c, kInputNode}),
        ::testing::ExitedWithCode(1), "identical shapes");
}

TEST(NetworkGraph, StrShowsNonChainEdges)
{
    Network net = residualBlock();
    std::string s = net.str();
    EXPECT_NE(s.find("<- ["), std::string::npos);
    EXPECT_NE(s.find("in"), std::string::npos);
}

} // namespace
} // namespace flcnn
