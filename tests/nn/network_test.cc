/** @file Network container: shape chaining, stages, weight accounting. */

#include <gtest/gtest.h>

#include "nn/network.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(Network, ShapeChaining)
{
    Network net("t", Shape{3, 32, 32});
    net.add(LayerSpec::conv("c1", 8, 5, 1));
    net.add(LayerSpec::pool("p1", 2, 2));
    EXPECT_EQ(net.inShape(0), (Shape{3, 32, 32}));
    EXPECT_EQ(net.outShape(0), (Shape{8, 28, 28}));
    EXPECT_EQ(net.inShape(1), (Shape{8, 28, 28}));
    EXPECT_EQ(net.outputShape(), (Shape{8, 14, 14}));
}

TEST(Network, ConvBlockExpandsToPadConvRelu)
{
    Network net("t", Shape{3, 8, 8});
    net.addConvBlock("c1", 4, 3, 1, 1);
    ASSERT_EQ(net.numLayers(), 3);
    EXPECT_EQ(net.layer(0).kind, LayerKind::Pad);
    EXPECT_EQ(net.layer(1).kind, LayerKind::Conv);
    EXPECT_EQ(net.layer(2).kind, LayerKind::ReLU);
    EXPECT_EQ(net.outputShape(), (Shape{4, 8, 8}));
}

TEST(Network, ConvBlockWithoutPadOmitsPadLayer)
{
    Network net("t", Shape{3, 8, 8});
    net.addConvBlock("c1", 4, 3, 1, 0);
    ASSERT_EQ(net.numLayers(), 2);
    EXPECT_EQ(net.layer(0).kind, LayerKind::Conv);
}

TEST(Network, StageExtractionGroupsCompanions)
{
    // pad+conv+relu forms one stage; pool its own stage.
    Network net("t", Shape{3, 16, 16});
    net.addConvBlock("c1", 4, 3, 1, 1);   // layers 0,1,2
    net.addMaxPool("p1", 2, 2);           // layer 3
    net.addConvBlock("c2", 8, 3, 1, 1);   // layers 4,5,6

    const auto &stages = net.stages();
    ASSERT_EQ(stages.size(), 3u);
    EXPECT_EQ(stages[0].first, 0);
    EXPECT_EQ(stages[0].windowed, 1);
    EXPECT_EQ(stages[0].last, 2);
    EXPECT_EQ(stages[1].first, 3);
    EXPECT_EQ(stages[1].last, 3);
    EXPECT_EQ(stages[2].first, 4);
    EXPECT_EQ(stages[2].windowed, 5);
    EXPECT_EQ(stages[2].last, 6);
}

TEST(Network, StageOfMapsLayersToStages)
{
    Network net("t", Shape{3, 16, 16});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    EXPECT_EQ(net.stageOf(0), 0);
    EXPECT_EQ(net.stageOf(2), 0);
    EXPECT_EQ(net.stageOf(3), 1);
}

TEST(Network, StagesStopAtNonFusableLayer)
{
    Network net("t", Shape{3, 12, 12});
    net.add(LayerSpec::conv("c1", 4, 3, 1));
    net.add(LayerSpec::fullyConnected("f", 10));
    net.add(LayerSpec::relu("r"));
    ASSERT_EQ(net.stages().size(), 1u);
    EXPECT_EQ(net.stageOf(1), -1);
}

TEST(Network, AlexNetHasEightFusableStages)
{
    // Section V-B: "AlexNet has five convolutional layers and three
    // pooling layers; there are 128 possible combinations" = 2^(8-1).
    Network net = alexnet();
    EXPECT_EQ(net.stages().size(), 8u);
}

TEST(Network, VggFirstFivePrefixHasSevenStages)
{
    // "For VGG, we consider fusing the first five convolutional layers
    // and two pooling layers, giving 64 possible combinations" = 2^6.
    Network net = vggEPrefix(5);
    EXPECT_EQ(net.stages().size(), 7u);
}

TEST(Network, ConvSlots)
{
    Network net("t", Shape{3, 16, 16});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c2", 8, 3, 1, 1);
    ASSERT_EQ(net.convLayers().size(), 2u);
    EXPECT_EQ(net.convSlot(net.convLayers()[0]), 0);
    EXPECT_EQ(net.convSlot(net.convLayers()[1]), 1);
}

TEST(NetworkDeath, ConvSlotOnNonConvPanics)
{
    Network net("t", Shape{3, 16, 16});
    net.add(LayerSpec::pool("p", 2, 2));
    EXPECT_DEATH(net.convSlot(0), "not a convolution");
}

TEST(Network, WeightBytesInRange)
{
    Network net("t", Shape{3, 16, 16});
    net.add(LayerSpec::conv("c1", 4, 3, 1));   // 4*3*9 w + 4 b
    net.add(LayerSpec::pool("p1", 2, 2));
    net.add(LayerSpec::conv("c2", 8, 3, 1));   // 8*4*9 w + 8 b
    EXPECT_EQ(net.weightBytesInRange(0, 0), (4 * 3 * 9 + 4) * 4);
    EXPECT_EQ(net.weightBytesInRange(0, 2),
              (4 * 3 * 9 + 4 + 8 * 4 * 9 + 8) * 4);
    EXPECT_EQ(net.weightBytesInRange(1, 1), 0);
}

TEST(Network, GroupedConvWeightBytes)
{
    Network net("t", Shape{4, 16, 16});
    net.add(LayerSpec::conv("c1", 8, 3, 1, 2));  // 8 * (4/2) * 9 + 8
    EXPECT_EQ(net.weightBytesInRange(0, 0), (8 * 2 * 9 + 8) * 4);
}

TEST(NetworkDeath, IncompatibleLayerIsFatal)
{
    Network net("t", Shape{3, 4, 4});
    EXPECT_EXIT(net.add(LayerSpec::conv("c", 4, 9, 1)),
                ::testing::ExitedWithCode(1), "kernel larger");
}

TEST(Network, DescriptionMentionsEveryLayer)
{
    Network net = tinyNet();
    std::string s = net.str();
    EXPECT_NE(s.find("layer1"), std::string::npos);
    EXPECT_NE(s.find("layer2"), std::string::npos);
}

} // namespace
} // namespace flcnn
