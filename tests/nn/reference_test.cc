/** @file Reference executor: hand-computed golden values and op counts. */

#include <gtest/gtest.h>

#include "nn/reference.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(Reference, ConvIdentityKernel)
{
    // 1x1 kernel with weight 1 and zero bias copies the input channel.
    Network net("id", Shape{1, 4, 4});
    net.add(LayerSpec::conv("c", 1, 1, 1));
    NetworkWeights w(net);
    w.bank(0).w(0, 0, 0, 0) = 1.0f;

    Tensor in(1, 4, 4);
    in.fillIota();
    Tensor out = runRange(net, w, in, 0, 0);
    for (int y = 0; y < 4; y++)
        for (int x = 0; x < 4; x++)
            EXPECT_EQ(out(0, y, x), in(0, y, x));
}

TEST(Reference, ConvHandComputed3x3)
{
    // All-ones 3x3 kernel on an all-ones 2-channel input sums 18 values
    // plus a bias of 0.5.
    Network net("sum", Shape{2, 5, 5});
    net.add(LayerSpec::conv("c", 1, 3, 1));
    NetworkWeights w(net);
    for (int n = 0; n < 2; n++)
        for (int i = 0; i < 3; i++)
            for (int j = 0; j < 3; j++)
                w.bank(0).w(0, n, i, j) = 1.0f;
    w.bank(0).bias(0) = 0.5f;

    Tensor in(2, 5, 5);
    in.fill(1.0f);
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_EQ(out.shape(), (Shape{1, 3, 3}));
    for (int y = 0; y < 3; y++)
        for (int x = 0; x < 3; x++)
            EXPECT_FLOAT_EQ(out(0, y, x), 18.5f);
}

TEST(Reference, ConvStrideSelectsCorrectWindows)
{
    Network net("s", Shape{1, 5, 5});
    net.add(LayerSpec::conv("c", 1, 1, 2));
    NetworkWeights w(net);
    w.bank(0).w(0, 0, 0, 0) = 1.0f;
    Tensor in(1, 5, 5);
    in.fillIota(10.0f);
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_EQ(out.shape(), (Shape{1, 3, 3}));
    EXPECT_EQ(out(0, 1, 2), in(0, 2, 4));
}

TEST(Reference, GroupedConvSeesOnlyItsGroup)
{
    // Two groups: filters 0..1 read channel 0..0? No: in.c=2, groups=2,
    // so filter group 0 reads channel 0 and group 1 reads channel 1.
    Network net("g", Shape{2, 3, 3});
    net.add(LayerSpec::conv("c", 2, 3, 1, 2));
    NetworkWeights w(net);
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 3; j++) {
            w.bank(0).w(0, 0, i, j) = 1.0f;
            w.bank(0).w(1, 0, i, j) = 1.0f;
        }
    Tensor in(2, 3, 3);
    for (int y = 0; y < 3; y++)
        for (int x = 0; x < 3; x++) {
            in(0, y, x) = 1.0f;
            in(1, y, x) = 10.0f;
        }
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 9.0f);    // sums channel 0 only
    EXPECT_FLOAT_EQ(out(1, 0, 0), 90.0f);   // sums channel 1 only
}

TEST(Reference, MaxPoolPicksMaximum)
{
    Network net("p", Shape{1, 4, 4});
    net.add(LayerSpec::pool("p", 2, 2));
    NetworkWeights w(net);
    Tensor in(1, 4, 4);
    in(0, 0, 0) = -5.0f;
    in(0, 0, 1) = 3.0f;
    in(0, 1, 0) = 2.0f;
    in(0, 1, 1) = -7.0f;
    in(0, 2, 2) = -1.0f;
    in(0, 2, 3) = -2.0f;
    in(0, 3, 2) = -3.0f;
    in(0, 3, 3) = -4.0f;
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 3.0f);
    // All-negative window: max pooling must not clamp at zero.
    EXPECT_FLOAT_EQ(out(0, 1, 1), -1.0f);
}

TEST(Reference, AvgPoolAverages)
{
    Network net("p", Shape{1, 2, 2});
    net.add(LayerSpec::pool("p", 2, 2, PoolMode::Avg));
    NetworkWeights w(net);
    Tensor in(1, 2, 2);
    in(0, 0, 0) = 1.0f;
    in(0, 0, 1) = 2.0f;
    in(0, 1, 0) = 3.0f;
    in(0, 1, 1) = 6.0f;
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 3.0f);
}

TEST(Reference, ReluClampsNegatives)
{
    Network net("r", Shape{1, 1, 3});
    net.add(LayerSpec::relu("r"));
    NetworkWeights w(net);
    Tensor in(1, 1, 3);
    in(0, 0, 0) = -2.0f;
    in(0, 0, 1) = 0.0f;
    in(0, 0, 2) = 5.0f;
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_EQ(out(0, 0, 0), 0.0f);
    EXPECT_EQ(out(0, 0, 1), 0.0f);
    EXPECT_EQ(out(0, 0, 2), 5.0f);
}

TEST(Reference, PadSurroundsWithZeros)
{
    Network net("p", Shape{1, 2, 2});
    net.add(LayerSpec::padding("p", 1));
    NetworkWeights w(net);
    Tensor in(1, 2, 2);
    in.fill(4.0f);
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_EQ(out.shape(), (Shape{1, 4, 4}));
    EXPECT_EQ(out(0, 0, 0), 0.0f);
    EXPECT_EQ(out(0, 0, 3), 0.0f);
    EXPECT_EQ(out(0, 3, 3), 0.0f);
    EXPECT_EQ(out(0, 1, 1), 4.0f);
    EXPECT_EQ(out(0, 2, 2), 4.0f);
}

TEST(Reference, FullyConnectedDotProduct)
{
    Network net("f", Shape{1, 1, 3});
    net.add(LayerSpec::fullyConnected("f", 2));
    NetworkWeights w(net);
    DenseWeights &dw = w.dense(0);
    dw.w = {1.0f, 2.0f, 3.0f, -1.0f, 0.0f, 1.0f};
    dw.bias = {0.5f, -0.5f};
    Tensor in(1, 1, 3);
    in(0, 0, 0) = 1.0f;
    in(0, 0, 1) = 1.0f;
    in(0, 0, 2) = 2.0f;
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 0.5f + 1 + 2 + 6);
    EXPECT_FLOAT_EQ(out(1, 0, 0), -0.5f - 1 + 0 + 2);
}

TEST(Reference, LrnPreservesSignAndShrinksMagnitude)
{
    Network net("n", Shape{8, 2, 2});
    net.add(LayerSpec::lrn("n"));
    NetworkWeights w(net);
    Tensor in(8, 2, 2);
    Rng rng(3);
    in.fillRandom(rng, -2.0f, 2.0f);
    Tensor out = runRange(net, w, in, 0, 0);
    for (int c = 0; c < 8; c++) {
        for (int y = 0; y < 2; y++) {
            for (int x = 0; x < 2; x++) {
                float a = in(c, y, x), b = out(c, y, x);
                EXPECT_LE(std::abs(b), std::abs(a) + 1e-6f);
                EXPECT_GE(a * b, 0.0f);
            }
        }
    }
}

TEST(Reference, MeasuredOpsEqualAnalyticOps)
{
    // DESIGN.md invariant 7 groundwork: the analytic layerOpCount must
    // match what the executor actually tallies.
    Rng rng(99);
    for (int trial = 0; trial < 10; trial++) {
        Network net = randomFusableNet(rng);
        Rng wrng(trial);
        NetworkWeights w(net, wrng);
        Tensor in(net.inputShape());
        Rng irng(trial + 100);
        in.fillRandom(irng);

        OpCount measured;
        runRange(net, w, in, 0, net.numLayers() - 1, &measured);
        OpCount analytic = rangeOpCount(net, 0, net.numLayers() - 1);
        EXPECT_EQ(measured, analytic) << net.str();
    }
}

TEST(Reference, AlexNetConvOpCounts)
{
    // conv1 of AlexNet: 55*55*96 outputs, 11*11*3 taps each.
    Network net = alexnet(ZooOptions{.grouped = false});
    OpCount c1 = layerOpCount(net.layer(0), net.inShape(0));
    EXPECT_EQ(c1.mults, 55LL * 55 * 96 * 121 * 3);
    EXPECT_EQ(c1.adds, c1.mults);
}

TEST(Reference, GroupedConvHalvesOps)
{
    Network a("a", Shape{4, 8, 8});
    a.add(LayerSpec::conv("c", 4, 3, 1, 1));
    Network b("b", Shape{4, 8, 8});
    b.add(LayerSpec::conv("c", 4, 3, 1, 2));
    EXPECT_EQ(layerOpCount(a.layer(0), a.inShape(0)).mults,
              2 * layerOpCount(b.layer(0), b.inShape(0)).mults);
}

TEST(ReferenceDeath, MissingWeightsPanics)
{
    LayerSpec c = LayerSpec::conv("c", 1, 1, 1);
    Tensor in(1, 2, 2);
    EXPECT_DEATH(runLayer(c, in, nullptr, nullptr, nullptr),
                 "filter bank");
}

} // namespace
} // namespace flcnn
