/** @file Reference executor: hand-computed golden values and op counts. */

#include <gtest/gtest.h>

#include "nn/reference.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(Reference, ConvIdentityKernel)
{
    // 1x1 kernel with weight 1 and zero bias copies the input channel.
    Network net("id", Shape{1, 4, 4});
    net.add(LayerSpec::conv("c", 1, 1, 1));
    NetworkWeights w(net);
    w.bank(0).w(0, 0, 0, 0) = 1.0f;

    Tensor in(1, 4, 4);
    in.fillIota();
    Tensor out = runRange(net, w, in, 0, 0);
    for (int y = 0; y < 4; y++)
        for (int x = 0; x < 4; x++)
            EXPECT_EQ(out(0, y, x), in(0, y, x));
}

TEST(Reference, ConvHandComputed3x3)
{
    // All-ones 3x3 kernel on an all-ones 2-channel input sums 18 values
    // plus a bias of 0.5.
    Network net("sum", Shape{2, 5, 5});
    net.add(LayerSpec::conv("c", 1, 3, 1));
    NetworkWeights w(net);
    for (int n = 0; n < 2; n++)
        for (int i = 0; i < 3; i++)
            for (int j = 0; j < 3; j++)
                w.bank(0).w(0, n, i, j) = 1.0f;
    w.bank(0).bias(0) = 0.5f;

    Tensor in(2, 5, 5);
    in.fill(1.0f);
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_EQ(out.shape(), (Shape{1, 3, 3}));
    for (int y = 0; y < 3; y++)
        for (int x = 0; x < 3; x++)
            EXPECT_FLOAT_EQ(out(0, y, x), 18.5f);
}

TEST(Reference, ConvStrideSelectsCorrectWindows)
{
    Network net("s", Shape{1, 5, 5});
    net.add(LayerSpec::conv("c", 1, 1, 2));
    NetworkWeights w(net);
    w.bank(0).w(0, 0, 0, 0) = 1.0f;
    Tensor in(1, 5, 5);
    in.fillIota(10.0f);
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_EQ(out.shape(), (Shape{1, 3, 3}));
    EXPECT_EQ(out(0, 1, 2), in(0, 2, 4));
}

TEST(Reference, GroupedConvSeesOnlyItsGroup)
{
    // Two groups: filters 0..1 read channel 0..0? No: in.c=2, groups=2,
    // so filter group 0 reads channel 0 and group 1 reads channel 1.
    Network net("g", Shape{2, 3, 3});
    net.add(LayerSpec::conv("c", 2, 3, 1, 2));
    NetworkWeights w(net);
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 3; j++) {
            w.bank(0).w(0, 0, i, j) = 1.0f;
            w.bank(0).w(1, 0, i, j) = 1.0f;
        }
    Tensor in(2, 3, 3);
    for (int y = 0; y < 3; y++)
        for (int x = 0; x < 3; x++) {
            in(0, y, x) = 1.0f;
            in(1, y, x) = 10.0f;
        }
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 9.0f);    // sums channel 0 only
    EXPECT_FLOAT_EQ(out(1, 0, 0), 90.0f);   // sums channel 1 only
}

TEST(Reference, MaxPoolPicksMaximum)
{
    Network net("p", Shape{1, 4, 4});
    net.add(LayerSpec::pool("p", 2, 2));
    NetworkWeights w(net);
    Tensor in(1, 4, 4);
    in(0, 0, 0) = -5.0f;
    in(0, 0, 1) = 3.0f;
    in(0, 1, 0) = 2.0f;
    in(0, 1, 1) = -7.0f;
    in(0, 2, 2) = -1.0f;
    in(0, 2, 3) = -2.0f;
    in(0, 3, 2) = -3.0f;
    in(0, 3, 3) = -4.0f;
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 3.0f);
    // All-negative window: max pooling must not clamp at zero.
    EXPECT_FLOAT_EQ(out(0, 1, 1), -1.0f);
}

TEST(Reference, AvgPoolAverages)
{
    Network net("p", Shape{1, 2, 2});
    net.add(LayerSpec::pool("p", 2, 2, PoolMode::Avg));
    NetworkWeights w(net);
    Tensor in(1, 2, 2);
    in(0, 0, 0) = 1.0f;
    in(0, 0, 1) = 2.0f;
    in(0, 1, 0) = 3.0f;
    in(0, 1, 1) = 6.0f;
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 3.0f);
}

TEST(Reference, ReluClampsNegatives)
{
    Network net("r", Shape{1, 1, 3});
    net.add(LayerSpec::relu("r"));
    NetworkWeights w(net);
    Tensor in(1, 1, 3);
    in(0, 0, 0) = -2.0f;
    in(0, 0, 1) = 0.0f;
    in(0, 0, 2) = 5.0f;
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_EQ(out(0, 0, 0), 0.0f);
    EXPECT_EQ(out(0, 0, 1), 0.0f);
    EXPECT_EQ(out(0, 0, 2), 5.0f);
}

TEST(Reference, PadSurroundsWithZeros)
{
    Network net("p", Shape{1, 2, 2});
    net.add(LayerSpec::padding("p", 1));
    NetworkWeights w(net);
    Tensor in(1, 2, 2);
    in.fill(4.0f);
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_EQ(out.shape(), (Shape{1, 4, 4}));
    EXPECT_EQ(out(0, 0, 0), 0.0f);
    EXPECT_EQ(out(0, 0, 3), 0.0f);
    EXPECT_EQ(out(0, 3, 3), 0.0f);
    EXPECT_EQ(out(0, 1, 1), 4.0f);
    EXPECT_EQ(out(0, 2, 2), 4.0f);
}

TEST(Reference, FullyConnectedDotProduct)
{
    Network net("f", Shape{1, 1, 3});
    net.add(LayerSpec::fullyConnected("f", 2));
    NetworkWeights w(net);
    DenseWeights &dw = w.dense(0);
    dw.w = {1.0f, 2.0f, 3.0f, -1.0f, 0.0f, 1.0f};
    dw.bias = {0.5f, -0.5f};
    Tensor in(1, 1, 3);
    in(0, 0, 0) = 1.0f;
    in(0, 0, 1) = 1.0f;
    in(0, 0, 2) = 2.0f;
    Tensor out = runRange(net, w, in, 0, 0);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 0.5f + 1 + 2 + 6);
    EXPECT_FLOAT_EQ(out(1, 0, 0), -0.5f - 1 + 0 + 2);
}

TEST(Reference, LrnPreservesSignAndShrinksMagnitude)
{
    Network net("n", Shape{8, 2, 2});
    net.add(LayerSpec::lrn("n"));
    NetworkWeights w(net);
    Tensor in(8, 2, 2);
    Rng rng(3);
    in.fillRandom(rng, -2.0f, 2.0f);
    Tensor out = runRange(net, w, in, 0, 0);
    for (int c = 0; c < 8; c++) {
        for (int y = 0; y < 2; y++) {
            for (int x = 0; x < 2; x++) {
                float a = in(c, y, x), b = out(c, y, x);
                EXPECT_LE(std::abs(b), std::abs(a) + 1e-6f);
                EXPECT_GE(a * b, 0.0f);
            }
        }
    }
}

TEST(Reference, MeasuredOpsEqualAnalyticOps)
{
    // DESIGN.md invariant 7 groundwork: the analytic layerOpCount must
    // match what the executor actually tallies.
    Rng rng(99);
    for (int trial = 0; trial < 10; trial++) {
        Network net = randomFusableNet(rng);
        Rng wrng(trial);
        NetworkWeights w(net, wrng);
        Tensor in(net.inputShape());
        Rng irng(trial + 100);
        in.fillRandom(irng);

        OpCount measured;
        runRange(net, w, in, 0, net.numLayers() - 1, &measured);
        OpCount analytic = rangeOpCount(net, 0, net.numLayers() - 1);
        EXPECT_EQ(measured, analytic) << net.str();
    }
}

TEST(Reference, AlexNetConvOpCounts)
{
    // conv1 of AlexNet: 55*55*96 outputs, 11*11*3 taps each.
    Network net = alexnet(ZooOptions{.grouped = false});
    OpCount c1 = layerOpCount(net.layer(0), net.inShape(0));
    EXPECT_EQ(c1.mults, 55LL * 55 * 96 * 121 * 3);
    EXPECT_EQ(c1.adds, c1.mults);
}

TEST(Reference, GroupedConvHalvesOps)
{
    Network a("a", Shape{4, 8, 8});
    a.add(LayerSpec::conv("c", 4, 3, 1, 1));
    Network b("b", Shape{4, 8, 8});
    b.add(LayerSpec::conv("c", 4, 3, 1, 2));
    EXPECT_EQ(layerOpCount(a.layer(0), a.inShape(0)).mults,
              2 * layerOpCount(b.layer(0), b.inShape(0)).mults);
}

TEST(ReferenceDeath, MissingWeightsPanics)
{
    LayerSpec c = LayerSpec::conv("c", 1, 1, 1);
    Tensor in(1, 2, 2);
    EXPECT_DEATH(runLayer(c, in, nullptr, nullptr, nullptr),
                 "filter bank");
}


// ---------------------------------------------------------------------
// DAG evaluation: runJoin / runGraph / runNetwork routing
// ---------------------------------------------------------------------

TEST(ReferenceGraph, RunGraphMatchesManualResidualComposition)
{
    Network net = residualBlock();
    Rng wrng(7);
    NetworkWeights w(net, wrng);
    Tensor in(net.inputShape());
    Rng irng(8);
    in.fillRandom(irng);

    // Hand-compose: trunk path [0, 4], then the Add join over
    // {trunk, input} in edge order, then the output ReLU.
    Tensor trunk = runRange(net, w, in, 0, 4);
    Tensor sum = runJoin(net.layer(5), {&trunk, &in}, nullptr);
    Tensor expect = runLayer(net.layer(6), sum, nullptr, nullptr,
                             nullptr);

    Tensor got = runGraph(net, w, in);
    EXPECT_EQ(got.shape(), expect.shape());
    for (int64_t i = 0; i < got.elems(); i++)
        ASSERT_EQ(got.data()[i], expect.data()[i]) << "elem " << i;
}

TEST(ReferenceGraph, RunGraphMatchesManualInceptionComposition)
{
    Network net = inceptionJoin();
    Rng wrng(11);
    NetworkWeights w(net, wrng);
    Tensor in(net.inputShape());
    Rng irng(12);
    in.fillRandom(irng);

    Tensor stem = runRange(net, w, in, 0, 0);
    Tensor b1 = runRange(net, w, stem, 1, 2);
    Tensor b3 = runRange(net, w, stem, 3, 5);
    Tensor expect = runJoin(net.layer(6), {&b1, &b3}, nullptr);

    Tensor got = runGraph(net, w, in);
    ASSERT_EQ(got.shape(), (Shape{10, 12, 12}));
    ASSERT_EQ(got.shape(), expect.shape());
    for (int64_t i = 0; i < got.elems(); i++)
        ASSERT_EQ(got.data()[i], expect.data()[i]) << "elem " << i;
}

TEST(ReferenceGraph, RunJoinAddSumsInEdgeOrder)
{
    LayerSpec add = LayerSpec::eltwiseAdd("a");
    Tensor a(1, 2, 2), b(1, 2, 2), c(1, 2, 2);
    a.fill(1.0f);
    b.fill(2.0f);
    c.fill(4.0f);
    OpCount ops;
    Tensor out = runJoin(add, {&a, &b, &c}, &ops);
    EXPECT_FLOAT_EQ(out(0, 0, 0), 7.0f);
    EXPECT_FLOAT_EQ(out(0, 1, 1), 7.0f);
    // (nins - 1) adds per element.
    EXPECT_EQ(ops.adds, 2 * out.elems());
}

TEST(ReferenceGraph, RunJoinConcatStacksChannelBlocks)
{
    LayerSpec cat = LayerSpec::depthConcat("c");
    Tensor a(2, 2, 2), b(3, 2, 2);
    a.fill(1.0f);
    b.fill(2.0f);
    Tensor out = runJoin(cat, {&a, &b}, nullptr);
    ASSERT_EQ(out.shape(), (Shape{5, 2, 2}));
    EXPECT_FLOAT_EQ(out(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(out(1, 1, 1), 1.0f);
    EXPECT_FLOAT_EQ(out(2, 0, 0), 2.0f);
    EXPECT_FLOAT_EQ(out(4, 1, 1), 2.0f);
}

TEST(ReferenceGraph, RunGraphOnChainEqualsRunRange)
{
    Network net = tinyNet();
    Rng wrng(21);
    NetworkWeights w(net, wrng);
    Tensor in(net.inputShape());
    Rng irng(22);
    in.fillRandom(irng);

    Tensor ranged = runRange(net, w, in, 0, net.numLayers() - 1);
    Tensor graphed = runGraph(net, w, in);
    ASSERT_EQ(graphed.shape(), ranged.shape());
    for (int64_t i = 0; i < graphed.elems(); i++)
        ASSERT_EQ(graphed.data()[i], ranged.data()[i]);
}

TEST(ReferenceGraph, RunNetworkRoutesChainAndGraph)
{
    // Chain: runNetwork must be bit-identical to runRange.
    Network chain = tinyNet();
    Rng r1(31);
    NetworkWeights wc(chain, r1);
    Tensor cin(chain.inputShape());
    Rng r2(32);
    cin.fillRandom(r2);
    Tensor via_net = runNetwork(chain, wc, cin);
    Tensor via_range = runRange(chain, wc, cin, 0,
                                chain.numLayers() - 1);
    for (int64_t i = 0; i < via_net.elems(); i++)
        ASSERT_EQ(via_net.data()[i], via_range.data()[i]);

    // DAG: runNetwork must be bit-identical to runGraph.
    Network dag = residualBlock();
    Rng r3(33);
    NetworkWeights wd(dag, r3);
    Tensor din(dag.inputShape());
    Rng r4(34);
    din.fillRandom(r4);
    Tensor g1 = runNetwork(dag, wd, din);
    Tensor g2 = runGraph(dag, wd, din);
    for (int64_t i = 0; i < g1.elems(); i++)
        ASSERT_EQ(g1.data()[i], g2.data()[i]);
}

TEST(ReferenceGraph, RunRangeOnOneAndTwoNodeGraphs)
{
    // Regression for the chain-only predecessor sweep: ranges at the
    // very front of a graph have no layer i-1 to implicitly index.
    Network one("one", Shape{2, 5, 5});
    one.add(LayerSpec::conv("c", 3, 3, 1));
    Rng r1(41);
    NetworkWeights w1(one, r1);
    Tensor in1(one.inputShape());
    Rng r2(42);
    in1.fillRandom(r2);
    Tensor o1 = runRange(one, w1, in1, 0, 0);
    EXPECT_EQ(o1.shape(), one.outputShape());

    Network two("two", Shape{2, 5, 5});
    two.add(LayerSpec::conv("c", 3, 3, 1));
    two.add(LayerSpec::relu("r"));
    Rng r3(43);
    NetworkWeights w2(two, r3);
    Tensor o2 = runRange(two, w2, in1, 0, 1);
    EXPECT_EQ(o2.shape(), two.outputShape());
    // And the suffix [1, 1] alone, whose predecessor is layer 0.
    Tensor mid = runRange(two, w2, in1, 0, 0);
    Tensor o3 = runRange(two, w2, mid, 1, 1);
    for (int64_t i = 0; i < o2.elems(); i++)
        ASSERT_EQ(o2.data()[i], o3.data()[i]);
}

TEST(ReferenceGraphDeath, RunLayerRejectsJoins)
{
    LayerSpec add = LayerSpec::eltwiseAdd("a");
    Tensor in(1, 2, 2);
    EXPECT_DEATH(runLayer(add, in, nullptr, nullptr, nullptr),
                 "runGraph");
}

TEST(ReferenceGraphDeath, RunRangeRejectsNonPathRanges)
{
    Network net = residualBlock();
    Rng rng(51);
    NetworkWeights w(net, rng);
    Tensor in(net.inputShape());
    EXPECT_DEATH(runRange(net, w, in, 0, net.numLayers() - 1),
                 "path-shaped");
}

} // namespace
} // namespace flcnn
