/** @file Zoo networks match their published shapes. */

#include <gtest/gtest.h>

#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(Zoo, AlexNetShapes)
{
    Network net = alexnet();
    // Feature-extractor output: 256 x 6 x 6.
    EXPECT_EQ(net.outputShape(), (Shape{256, 6, 6}));
    // conv1 output 96x55x55 (layer 0).
    EXPECT_EQ(net.outShape(0), (Shape{96, 55, 55}));
    ASSERT_EQ(net.convLayers().size(), 5u);
}

TEST(Zoo, AlexNetWithClassifier)
{
    Network net = alexnet(ZooOptions{.includeClassifier = true});
    EXPECT_EQ(net.outputShape(), (Shape{1000, 1, 1}));
}

TEST(Zoo, AlexNetLrnOption)
{
    Network with = alexnet(ZooOptions{.includeLrn = true});
    Network without = alexnet();
    EXPECT_EQ(with.numLayers(), without.numLayers() + 2);
}

TEST(Zoo, AlexNetFusedPrefixShapes)
{
    // The paper's fused group ends at conv2's ReLU: 256 x 27 x 27.
    Network net = alexnetFusedPrefix();
    EXPECT_EQ(net.outputShape(), (Shape{256, 27, 27}));
    // Two conv, two ReLU, one pad, one pool = 6 layers.
    EXPECT_EQ(net.numLayers(), 6);
}

TEST(Zoo, VggEShapes)
{
    Network net = vggE();
    ASSERT_EQ(net.convLayers().size(), 16u);
    // Feature extractor output: 512 x 7 x 7.
    EXPECT_EQ(net.outputShape(), (Shape{512, 7, 7}));
    // conv1_1 output (after pad): 64 x 224 x 224.
    EXPECT_EQ(net.outShape(1), (Shape{64, 224, 224}));
}

TEST(Zoo, VggEWithClassifier)
{
    Network net = vggE(ZooOptions{.includeClassifier = true});
    EXPECT_EQ(net.outputShape(), (Shape{1000, 1, 1}));
}

TEST(Zoo, VggPrefixFiveConvs)
{
    Network net = vggEPrefix(5);
    ASSERT_EQ(net.convLayers().size(), 5u);
    // Output of conv3_1 (+ReLU): 256 x 56 x 56.
    EXPECT_EQ(net.outputShape(), (Shape{256, 56, 56}));
    // Exactly two pools inside the prefix.
    int pools = 0;
    for (int i = 0; i < net.numLayers(); i++)
        pools += (net.layer(i).kind == LayerKind::Pool);
    EXPECT_EQ(pools, 2);
}

TEST(Zoo, VggPrefixOneConv)
{
    Network net = vggEPrefix(1);
    ASSERT_EQ(net.convLayers().size(), 1u);
    EXPECT_EQ(net.outputShape(), (Shape{64, 224, 224}));
}

TEST(Zoo, VggPrefixSixteenIsFullFeatureExtractorSansLastPool)
{
    Network net = vggEPrefix(16);
    ASSERT_EQ(net.convLayers().size(), 16u);
    // Prefix ends on conv5_4's ReLU: 512 x 14 x 14.
    EXPECT_EQ(net.outputShape(), (Shape{512, 14, 14}));
}

TEST(Zoo, VggDShapes)
{
    Network net = vggD();
    ASSERT_EQ(net.convLayers().size(), 13u);
    EXPECT_EQ(net.outputShape(), (Shape{512, 7, 7}));
    Network cls = vggD(ZooOptions{.includeClassifier = true});
    EXPECT_EQ(cls.outputShape(), (Shape{1000, 1, 1}));
}

TEST(Zoo, GoogLeNetStemShapes)
{
    Network net = googlenetStem();
    // conv1: 64 x 112 x 112 after 7x7/s2 on padded 230.
    EXPECT_EQ(net.outShape(1), (Shape{64, 112, 112}));
    // Final pooled output: 192 x 28 x 28.
    EXPECT_EQ(net.outputShape(), (Shape{192, 28, 28}));
    // Contains a kernel-1 convolution.
    bool has_k1 = false;
    for (int i : net.convLayers())
        has_k1 |= (net.layer(i).kernel == 1);
    EXPECT_TRUE(has_k1);
}

TEST(Zoo, TinyNetMatchesFigure3)
{
    Network net = tinyNet();
    EXPECT_EQ(net.inputShape().h, 7);
    EXPECT_EQ(net.outputShape(), (Shape{4, 3, 3}));
}

TEST(Zoo, RandomNetsAreValidAndDeterministic)
{
    for (uint64_t seed = 0; seed < 30; seed++) {
        Rng a(seed), b(seed);
        Network n1 = randomFusableNet(a);
        Network n2 = randomFusableNet(b);
        EXPECT_GE(n1.numLayers(), 1);
        EXPECT_EQ(n1.numLayers(), n2.numLayers());
        EXPECT_TRUE(n1.outputShape() == n2.outputShape());
        EXPECT_TRUE(n1.outputShape().valid());
    }
}

TEST(Zoo, AlexNetFeatureMapDominanceInEarlyLayers)
{
    // Section II-B: in early layers the feature maps dominate the
    // weights; deeper in, weights take over.
    Network net = alexnet();
    int first_conv = net.convLayers().front();
    int last_conv = net.convLayers().back();
    int64_t fm_first = net.inShape(first_conv).bytes() +
                       net.outShape(first_conv).bytes();
    int64_t w_first = net.weightBytesInRange(first_conv, first_conv);
    EXPECT_GT(fm_first, 10 * w_first);

    int64_t fm_last = net.inShape(last_conv).bytes() +
                      net.outShape(last_conv).bytes();
    int64_t w_last = net.weightBytesInRange(last_conv, last_conv);
    EXPECT_GT(w_last, fm_last);
}

} // namespace
} // namespace flcnn
