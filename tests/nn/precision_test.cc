/**
 * @file
 * NetPrecision and the reference executor's precision modes:
 * deterministic calibration, a bit-exact fp32 passthrough, thread-count
 * invariance within int8/fp16, and bounded deviation from fp32.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hh"
#include "nn/precision.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

/** Small conv/relu/pool/conv net: two conv slots, activations that go
 *  through a nonlinearity between them. */
Network
probeNet()
{
    Network net("probe", Shape{3, 24, 24});
    net.add(LayerSpec::conv("c1", 8, 3, 1));
    net.add(LayerSpec::relu("r1"));
    net.add(LayerSpec::pool("p1", 2, 2));
    net.add(LayerSpec::conv("c2", 12, 3, 1));
    net.add(LayerSpec::relu("r2"));
    return net;
}

TEST(NetPrecision, CalibrationIsDeterministic)
{
    Network net = probeNet();
    Rng wrng(5);
    NetworkWeights w(net, wrng);

    const NetPrecision a =
        NetPrecision::calibrate(net, w, Precision::Int8);
    const NetPrecision b =
        NetPrecision::calibrate(net, w, Precision::Int8);
    ASSERT_EQ(a.mode(), Precision::Int8);
    for (int slot = 0; slot < 2; slot++) {
        EXPECT_EQ(a.actQuant(slot).scale, b.actQuant(slot).scale)
            << "slot=" << slot;
        EXPECT_EQ(a.actQuant(slot).zp, b.actQuant(slot).zp);
        EXPECT_EQ(a.weightScales(slot), b.weightScales(slot));
        EXPECT_GT(a.actQuant(slot).scale, 0.0f);
        EXPECT_TRUE(std::isfinite(a.actQuant(slot).scale));
    }
    // Identical scales, but never an identical identity: two
    // calibrations must not alias in the weight-pack cache.
    EXPECT_NE(a.scaleId(), b.scaleId());
    EXPECT_NE(a.scaleId(), 0u);
    // Weight scales cover every filter of each slot.
    EXPECT_EQ(a.weightScales(0).size(), 8u);
    EXPECT_EQ(a.weightScales(1).size(), 12u);
}

TEST(NetPrecision, Fp32AndFp16NeedNoCalibrationState)
{
    Network net = probeNet();
    Rng wrng(5);
    NetworkWeights w(net, wrng);
    const NetPrecision f32 =
        NetPrecision::calibrate(net, w, Precision::Fp32);
    const NetPrecision f16 =
        NetPrecision::calibrate(net, w, Precision::Fp16);
    EXPECT_EQ(f32.mode(), Precision::Fp32);
    EXPECT_EQ(f16.mode(), Precision::Fp16);
    EXPECT_EQ(f32.scaleId(), 0u);
    EXPECT_EQ(f16.scaleId(), 0u);
}

TEST(Reference, Fp32PrecisionPointerIsABitExactPassthrough)
{
    Network net = probeNet();
    Rng wrng(5), irng(6);
    NetworkWeights w(net, wrng);
    Tensor in(net.inputShape().c, net.inputShape().h, net.inputShape().w);
    in.fillRandom(irng);

    const int last = net.numLayers() - 1;
    const Tensor plain = runRange(net, w, in, 0, last);
    const NetPrecision f32 =
        NetPrecision::calibrate(net, w, Precision::Fp32);
    EXPECT_TRUE(tensorsEqual(plain, runRange(net, w, in, 0, last, &f32)));
    EXPECT_TRUE(tensorsEqual(
        plain, runRange(net, w, in, 0, last,
                        static_cast<const NetPrecision *>(nullptr))));
}

TEST(Reference, PrecisionRunsAreThreadCountInvariant)
{
    Network net = probeNet();
    Rng wrng(5), irng(6);
    NetworkWeights w(net, wrng);
    Tensor in(net.inputShape().c, net.inputShape().h, net.inputShape().w);
    in.fillRandom(irng);
    const int last = net.numLayers() - 1;

    for (Precision mode : {Precision::Int8, Precision::Fp16}) {
        const NetPrecision prec =
            NetPrecision::calibrate(net, w, mode);
        ThreadPool::setGlobalThreads(1);
        const Tensor serial = runRange(net, w, in, 0, last, &prec);
        ThreadPool::setGlobalThreads(8);
        const Tensor parallel = runRange(net, w, in, 0, last, &prec);
        ThreadPool::setGlobalThreads(0);
        EXPECT_TRUE(tensorsEqual(serial, parallel))
            << precisionName(mode);
    }
}

TEST(Reference, QuantizedRunsStayWithinDocumentedBounds)
{
    // The README's error-bound contract on this scale of network:
    // int8 within 5e-2 absolute, fp16 within 5e-3 (the values here are
    // O(1); the measured deviations are far smaller).
    Network net = probeNet();
    Rng wrng(5), irng(6);
    NetworkWeights w(net, wrng);
    Tensor in(net.inputShape().c, net.inputShape().h, net.inputShape().w);
    in.fillRandom(irng);
    const int last = net.numLayers() - 1;
    const Tensor f32 = runRange(net, w, in, 0, last);

    const NetPrecision i8 =
        NetPrecision::calibrate(net, w, Precision::Int8);
    const CompareResult ci8 =
        compareTensors(f32, runRange(net, w, in, 0, last, &i8), 0.0,
                       5e-2);
    EXPECT_TRUE(ci8.match) << "int8 maxAbsDiff=" << ci8.maxAbsDiff;
    EXPECT_GT(ci8.maxAbsDiff, 0.0);  // it really quantized

    const NetPrecision f16 =
        NetPrecision::calibrate(net, w, Precision::Fp16);
    const CompareResult cf16 =
        compareTensors(f32, runRange(net, w, in, 0, last, &f16), 0.0,
                       5e-3);
    EXPECT_TRUE(cf16.match) << "fp16 maxAbsDiff=" << cf16.maxAbsDiff;
}

} // namespace
} // namespace flcnn
