/** @file NetworkWeights storage and initialization tests. */

#include <gtest/gtest.h>

#include "nn/weights.hh"
#include "nn/zoo.hh"

namespace flcnn {
namespace {

TEST(NetworkWeights, OneBankPerConvolution)
{
    Network net("t", Shape{3, 16, 16});
    net.addConvBlock("c1", 4, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c2", 8, 5, 1, 2);
    NetworkWeights w(net);
    ASSERT_EQ(w.numBanks(), 2);
    EXPECT_EQ(w.bank(0).numFilters(), 4);
    EXPECT_EQ(w.bank(0).numChannels(), 3);
    EXPECT_EQ(w.bank(0).kernel(), 3);
    EXPECT_EQ(w.bank(1).numFilters(), 8);
    EXPECT_EQ(w.bank(1).numChannels(), 4);
    EXPECT_EQ(w.bank(1).kernel(), 5);
}

TEST(NetworkWeights, GroupedConvBanksSeePerGroupChannels)
{
    Network net("g", Shape{4, 12, 12});
    net.add(LayerSpec::conv("c", 8, 3, 1, 2));
    NetworkWeights w(net);
    EXPECT_EQ(w.bank(0).numChannels(), 2);  // 4 / groups
}

TEST(NetworkWeights, ZeroInitializedByDefault)
{
    Network net = tinyNet();
    NetworkWeights w(net);
    EXPECT_EQ(w.bank(0).w(0, 0, 0, 0), 0.0f);
    EXPECT_EQ(w.bank(0).bias(0), 0.0f);
}

TEST(NetworkWeights, SeededInitIsDeterministic)
{
    Network net = tinyNet();
    Rng a(7), b(7);
    NetworkWeights wa(net, a), wb(net, b);
    EXPECT_EQ(wa.bank(1).w(1, 2, 0, 1), wb.bank(1).w(1, 2, 0, 1));
    EXPECT_EQ(wa.bank(0).bias(2), wb.bank(0).bias(2));
}

TEST(NetworkWeights, BankForLayerResolvesByNetworkIndex)
{
    Network net("t", Shape{3, 16, 16});
    net.add(LayerSpec::conv("c1", 4, 3, 1));   // layer 0 -> slot 0
    net.add(LayerSpec::relu("r"));
    net.add(LayerSpec::conv("c2", 2, 3, 1));   // layer 2 -> slot 1
    NetworkWeights w(net);
    EXPECT_EQ(&w.bankForLayer(net, 0), &w.bank(0));
    EXPECT_EQ(&w.bankForLayer(net, 2), &w.bank(1));
}

TEST(NetworkWeights, DenseSlotsForClassifier)
{
    Network net("fc", Shape{2, 4, 4});
    net.add(LayerSpec::fullyConnected("fc1", 8));
    net.add(LayerSpec::fullyConnected("fc2", 3));
    NetworkWeights w(net);
    ASSERT_EQ(w.numDense(), 2);
    EXPECT_EQ(w.dense(0).outUnits, 8);
    EXPECT_EQ(w.dense(0).inElems, 2 * 4 * 4);
    EXPECT_EQ(w.dense(1).outUnits, 3);
    EXPECT_EQ(w.dense(1).inElems, 8);
}

TEST(NetworkWeights, TotalBytesCountsEverything)
{
    Network net("t", Shape{2, 6, 6});
    net.add(LayerSpec::conv("c", 3, 3, 1));       // 3*2*9 + 3 floats
    net.add(LayerSpec::fullyConnected("f", 5));   // 5*(3*4*4) + 5
    NetworkWeights w(net);
    int64_t expect = (3 * 2 * 9 + 3) * 4 + (5 * 48 + 5) * 4;
    EXPECT_EQ(w.totalBytes(), expect);
}

TEST(NetworkWeights, VggWeightBudgetMatchesLiterature)
{
    // VGG-19's conv weights are ~20M parameters (~76.4 MiB fp32).
    Network net = vggE();
    NetworkWeights w(net);
    double mib = static_cast<double>(w.totalBytes()) / (1024.0 * 1024.0);
    EXPECT_GT(mib, 74.0);
    EXPECT_LT(mib, 80.0);
}

TEST(NetworkWeightsDeath, BadSlotPanics)
{
    Network net = tinyNet();
    NetworkWeights w(net);
    EXPECT_DEATH(w.bank(2), "slot");
    EXPECT_DEATH(w.dense(0), "slot");
}

} // namespace
} // namespace flcnn
