/** @file LayerSpec construction, validation, and shape inference. */

#include <gtest/gtest.h>

#include "nn/layer.hh"

namespace flcnn {
namespace {

TEST(LayerSpec, ConvShapeInference)
{
    LayerSpec c = LayerSpec::conv("c", 96, 11, 4);
    Shape out = c.outShape(Shape{3, 227, 227});
    EXPECT_EQ(out, (Shape{96, 55, 55}));
}

TEST(LayerSpec, ConvShapeWithFloorDivision)
{
    LayerSpec c = LayerSpec::conv("c", 8, 3, 2);
    EXPECT_EQ(c.outShape(Shape{1, 8, 8}), (Shape{8, 3, 3}));
    EXPECT_EQ(c.outShape(Shape{1, 9, 9}), (Shape{8, 4, 4}));
}

TEST(LayerSpec, PoolShapeInference)
{
    LayerSpec p = LayerSpec::pool("p", 3, 2);
    EXPECT_EQ(p.outShape(Shape{96, 55, 55}), (Shape{96, 27, 27}));
    LayerSpec q = LayerSpec::pool("q", 2, 2);
    EXPECT_EQ(q.outShape(Shape{64, 224, 224}), (Shape{64, 112, 112}));
}

TEST(LayerSpec, PadShapeInference)
{
    LayerSpec p = LayerSpec::padding("p", 2);
    EXPECT_EQ(p.outShape(Shape{64, 27, 27}), (Shape{64, 31, 31}));
}

TEST(LayerSpec, PointwiseShapesPreserved)
{
    Shape s{16, 14, 14};
    EXPECT_EQ(LayerSpec::relu("r").outShape(s), s);
    EXPECT_EQ(LayerSpec::lrn("n").outShape(s), s);
}

TEST(LayerSpec, FullyConnectedFlattens)
{
    LayerSpec f = LayerSpec::fullyConnected("f", 4096);
    EXPECT_EQ(f.outShape(Shape{256, 6, 6}), (Shape{4096, 1, 1}));
}

TEST(LayerSpec, ValidationCatchesBadParameters)
{
    EXPECT_NE(LayerSpec::conv("c", 0, 3, 1).validate(Shape{1, 8, 8}), "");
    EXPECT_NE(LayerSpec::conv("c", 4, 9, 1).validate(Shape{1, 8, 8}), "");
    EXPECT_NE(LayerSpec::conv("c", 4, 3, 0).validate(Shape{1, 8, 8}), "");
    EXPECT_NE(LayerSpec::pool("p", 0, 1).validate(Shape{1, 8, 8}), "");
    EXPECT_NE(LayerSpec::padding("p", -1).validate(Shape{1, 8, 8}), "");
    EXPECT_EQ(LayerSpec::conv("c", 4, 3, 1).validate(Shape{1, 8, 8}), "");
}

TEST(LayerSpec, GroupValidation)
{
    // Groups must divide both input and output channels.
    EXPECT_EQ(LayerSpec::conv("c", 4, 3, 1, 2).validate(Shape{4, 8, 8}),
              "");
    EXPECT_NE(LayerSpec::conv("c", 4, 3, 1, 3).validate(Shape{4, 8, 8}),
              "");
    EXPECT_NE(LayerSpec::conv("c", 5, 3, 1, 2).validate(Shape{4, 8, 8}),
              "");
}

TEST(LayerSpec, KindPredicates)
{
    EXPECT_TRUE(LayerSpec::conv("c", 1, 1, 1).windowed());
    EXPECT_TRUE(LayerSpec::pool("p", 2, 2).windowed());
    EXPECT_FALSE(LayerSpec::relu("r").windowed());
    EXPECT_TRUE(LayerSpec::relu("r").pointwise());
    EXPECT_TRUE(LayerSpec::lrn("n").pointwise());
    EXPECT_TRUE(LayerSpec::padding("p", 1).fusable());
    EXPECT_FALSE(LayerSpec::fullyConnected("f", 10).fusable());
}

TEST(LayerSpec, KindNames)
{
    EXPECT_STREQ(layerKindName(LayerKind::Conv), "conv");
    EXPECT_STREQ(layerKindName(LayerKind::Pool), "pool");
    EXPECT_STREQ(layerKindName(LayerKind::FullyConnected), "fc");
}

TEST(LayerSpecDeath, OutShapeOnInvalidInputPanics)
{
    LayerSpec c = LayerSpec::conv("c", 4, 9, 1);
    EXPECT_DEATH(c.outShape(Shape{1, 8, 8}), "kernel larger");
}

} // namespace
} // namespace flcnn
