/** @file Byte/count formatting tests. */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace flcnn {
namespace {

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(0), "0 B");
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(1024), "1.00 KB");
    EXPECT_EQ(formatBytes(362 * 1024), "362.00 KB");
    EXPECT_EQ(formatBytes(77 * 1024 * 1024), "77.00 MB");
    EXPECT_EQ(formatBytes(3LL * 1024 * 1024 * 1024), "3.00 GB");
}

TEST(Units, FormatCount)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1,000");
    EXPECT_EQ(formatCount(678000000), "678,000,000");
    EXPECT_EQ(formatCount(-1234567), "-1,234,567");
}

TEST(Units, FormatScaled)
{
    EXPECT_EQ(formatScaled(42), "42");
    EXPECT_EQ(formatScaled(1500), "1.50 K");
    EXPECT_EQ(formatScaled(678e6), "678.00 M");
    EXPECT_EQ(formatScaled(470e9), "470.00 B");
    EXPECT_EQ(formatScaled(1.2e12), "1.20 T");
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(toKiB(2048), 2.0);
    EXPECT_DOUBLE_EQ(toMiB(3 * oneMiB), 3.0);
    EXPECT_EQ(bytesPerWord, 4);
}

} // namespace
} // namespace flcnn
