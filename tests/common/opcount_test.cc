/** @file OpCount arithmetic-tally tests. */

#include <gtest/gtest.h>

#include "common/opcount.hh"

namespace flcnn {
namespace {

TEST(OpCount, DefaultsToZero)
{
    OpCount c;
    EXPECT_EQ(c.mults, 0);
    EXPECT_EQ(c.adds, 0);
    EXPECT_EQ(c.compares, 0);
    EXPECT_EQ(c.multAdds(), 0);
    EXPECT_EQ(c.total(), 0);
}

TEST(OpCount, Accumulation)
{
    OpCount a{10, 20, 5};
    OpCount b{1, 2, 3};
    a += b;
    EXPECT_EQ(a.mults, 11);
    EXPECT_EQ(a.adds, 22);
    EXPECT_EQ(a.compares, 8);
}

TEST(OpCount, PlusAndMinus)
{
    OpCount a{10, 20, 5};
    OpCount b{1, 2, 3};
    OpCount sum = a + b;
    EXPECT_EQ(sum.mults, 11);
    OpCount diff = sum - b;
    EXPECT_TRUE(diff == a);
}

TEST(OpCount, MultAddsIsThePaperMetric)
{
    OpCount c{100, 100, 999};
    EXPECT_EQ(c.multAdds(), 200);  // compares excluded
    EXPECT_EQ(c.total(), 1199);
}

TEST(OpCount, Equality)
{
    EXPECT_TRUE((OpCount{1, 2, 3}) == (OpCount{1, 2, 3}));
    EXPECT_FALSE((OpCount{1, 2, 3}) == (OpCount{1, 2, 4}));
    EXPECT_FALSE((OpCount{0, 2, 3}) == (OpCount{1, 2, 3}));
}

} // namespace
} // namespace flcnn
