/** @file ASCII table renderer tests. */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace flcnn {
namespace {

TEST(Table, RendersHeaderRuleAndRows)
{
    Table t({"layer", "KB"});
    t.addRow({"conv1", "688"});
    t.addRow({"conv2", "962"});
    std::string s = t.render();
    EXPECT_NE(s.find("| layer | KB  |"), std::string::npos);
    EXPECT_NE(s.find("|-------|-----|"), std::string::npos);
    EXPECT_NE(s.find("| conv1 | 688 |"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsSizeToWidestCell)
{
    Table t({"a"});
    t.addRow({"short"});
    t.addRow({"much-longer-cell"});
    std::string s = t.render();
    EXPECT_NE(s.find("| much-longer-cell |"), std::string::npos);
    EXPECT_NE(s.find("| short            |"), std::string::npos);
}

TEST(TableDeath, RowArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtF(2.0, 0), "2");
    EXPECT_EQ(fmtI(-42), "-42");
}

} // namespace
} // namespace flcnn
