/** @file Integer-math helper tests. */

#include <gtest/gtest.h>

#include "common/mathutil.hh"

namespace flcnn {
namespace {

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 3), 0);
    EXPECT_EQ(ceilDiv(1, 3), 1);
    EXPECT_EQ(ceilDiv(3, 3), 1);
    EXPECT_EQ(ceilDiv(4, 3), 2);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1000000007LL, 2), 500000004LL);
}

TEST(MathUtil, CeilMulDiv)
{
    EXPECT_EQ(ceilMulDiv(0, 3, 7), 0);
    EXPECT_EQ(ceilMulDiv(7, 1, 7), 1);
    EXPECT_EQ(ceilMulDiv(8, 1, 7), 2);
    EXPECT_EQ(ceilMulDiv(10, 3, 4), 8);   // ceil(30/4)
    EXPECT_EQ(ceilMulDiv(12, 3, 4), 9);   // exact
    // The 128-bit intermediate survives products beyond int64.
    const int64_t big = int64_t{1} << 61;
    EXPECT_EQ(ceilMulDiv(big, 4, 2), big * 2);
    EXPECT_EQ(ceilMulDiv(big + 1, 2, 2), big + 1);
}

TEST(MathUtil, AlignUp)
{
    EXPECT_EQ(alignUp(0, 8), 0);
    EXPECT_EQ(alignUp(1, 8), 8);
    EXPECT_EQ(alignUp(8, 8), 8);
    EXPECT_EQ(alignUp(9, 8), 16);
}

TEST(MathUtil, SlidingOutputs)
{
    // The standard convolution output-size formula.
    EXPECT_EQ(slidingOutputs(7, 3, 1), 5);
    EXPECT_EQ(slidingOutputs(7, 3, 2), 3);
    EXPECT_EQ(slidingOutputs(227, 11, 4), 55);
    EXPECT_EQ(slidingOutputs(2, 3, 1), 0);  // window does not fit
    EXPECT_EQ(slidingOutputs(3, 3, 5), 1);
}

TEST(MathUtil, WindowSpanIsPaperRecursion)
{
    // D' = S*D + K - S, the pyramid recursion of Section III-B.
    EXPECT_EQ(windowSpan(1, 3, 1), 3);
    EXPECT_EQ(windowSpan(3, 3, 1), 5);
    EXPECT_EQ(windowSpan(5, 3, 2), 11);
    EXPECT_EQ(windowSpan(0, 3, 1), 0);
}

TEST(MathUtil, SpanAndOutputsAreInverse)
{
    for (int k = 1; k <= 7; k++) {
        for (int s = 1; s <= 4; s++) {
            for (int d = 1; d <= 9; d++) {
                int64_t span = windowSpan(d, k, s);
                EXPECT_EQ(slidingOutputs(span, k, s), d)
                    << "k=" << k << " s=" << s << " d=" << d;
            }
        }
    }
}

TEST(MathUtil, Clamp)
{
    EXPECT_EQ(clampI64(5, 0, 10), 5);
    EXPECT_EQ(clampI64(-5, 0, 10), 0);
    EXPECT_EQ(clampI64(15, 0, 10), 10);
}

} // namespace
} // namespace flcnn
