/** @file Logging channel behavior. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace flcnn {
namespace {

TEST(Logging, LevelRoundTrip)
{
    LogLevel prev = setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(prev);
}

TEST(Logging, InformAndWarnDoNotTerminate)
{
    LogLevel prev = setLogLevel(LogLevel::Quiet);
    inform("suppressed %d", 1);
    warn("suppressed %s", "too");
    setLogLevel(prev);
    SUCCEED();
}

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad config value %d", 7),
                ::testing::ExitedWithCode(1), "bad config value 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("internal invariant %s broke", "x"),
                 "internal invariant x broke");
}

TEST(LoggingDeath, AssertMacroPanicsWithContext)
{
    auto boom = [] { FLCNN_ASSERT(1 == 2, "math still works"); };
    EXPECT_DEATH(boom(), "math still works");
}

TEST(Logging, AssertMacroPassesQuietly)
{
    FLCNN_ASSERT(2 + 2 == 4, "unreachable");
    SUCCEED();
}

} // namespace
} // namespace flcnn
