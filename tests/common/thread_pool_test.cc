/** @file ThreadPool: coverage, determinism, nesting, env plumbing. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/thread_pool.hh"

namespace flcnn {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 3, 8}) {
        ThreadPool pool(threads);
        for (int64_t n : {0, 1, 2, 7, 64, 1000}) {
            std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
            for (auto &h : hits)
                h = 0;
            pool.parallelFor(0, n, [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; i++)
                    hits[static_cast<size_t>(i)]++;
            });
            for (int64_t i = 0; i < n; i++)
                EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
                    << "threads=" << threads << " n=" << n << " i=" << i;
        }
    }
}

TEST(ThreadPool, OffsetRanges)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(10);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(100, 110, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; i++) {
            ASSERT_GE(i, 100);
            ASSERT_LT(i, 110);
            hits[static_cast<size_t>(i - 100)]++;
        }
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, StaticPartitioningIsDeterministic)
{
    // Chunk boundaries depend only on (range, threads): two identical
    // invocations record the same chunk list.
    ThreadPool pool(5);
    auto record = [&] {
        std::mutex mu;
        std::vector<std::pair<int64_t, int64_t>> chunks;
        pool.parallelFor(3, 103, [&](int64_t lo, int64_t hi) {
            std::lock_guard<std::mutex> lk(mu);
            chunks.emplace_back(lo, hi);
        });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    auto a = record();
    auto b = record();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 5u);
    // Contiguous cover of [3, 103).
    EXPECT_EQ(a.front().first, 3);
    EXPECT_EQ(a.back().second, 103);
    for (size_t i = 1; i < a.size(); i++)
        EXPECT_EQ(a[i].first, a[i - 1].second);
}

TEST(ThreadPool, GrainBoundsChunkCount)
{
    ThreadPool pool(8);
    std::atomic<int> calls{0};
    pool.parallelFor(
        0, 10, [&](int64_t, int64_t) { calls++; }, /*grain=*/5);
    // 10 indices at grain 5 use at most 2 chunks regardless of width.
    EXPECT_LE(calls.load(), 2);
    EXPECT_GE(calls.load(), 1);
}

TEST(ThreadPool, NestedCallsRunInline)
{
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    pool.parallelFor(0, 8, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; i++) {
            // A nested parallelFor from a pool thread must not
            // deadlock; it runs the body inline.
            pool.parallelFor(0, 3, [&](int64_t l2, int64_t h2) {
                total += h2 - l2;
            });
        }
    });
    EXPECT_EQ(total.load(), 8 * 3);
}

TEST(ThreadPool, ChunkLocalReductionIsBitExact)
{
    // The executors' pattern: disjoint writes, deterministic merge.
    const int64_t n = 4096;
    std::vector<double> data(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; i++)
        data[static_cast<size_t>(i)] =
            1.0 / static_cast<double>(i + 1);

    auto sum_with = [&](int threads) {
        ThreadPool pool(threads);
        std::vector<double> out(static_cast<size_t>(n));
        pool.parallelFor(0, n, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; i++)
                out[static_cast<size_t>(i)] =
                    data[static_cast<size_t>(i)] * 3.0;
        });
        // Serial merge in index order: identical at any thread count.
        double acc = 0.0;
        for (double v : out)
            acc += v;
        return acc;
    };
    double s1 = sum_with(1);
    for (int threads : {2, 3, 8})
        EXPECT_EQ(s1, sum_with(threads));
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, [&](int64_t, int64_t) { calls++; });
    pool.parallelFor(7, 3, [&](int64_t, int64_t) { calls++; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, DefaultThreadsHonorsEnv)
{
    ::setenv("FLCNN_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3);
    ::setenv("FLCNN_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
    ::unsetenv("FLCNN_THREADS");
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(ThreadPool, GlobalPoolCanBeResized)
{
    ThreadPool::setGlobalThreads(2);
    EXPECT_EQ(ThreadPool::global().numThreads(), 2);
    std::atomic<int64_t> total{0};
    parallelFor(0, 100, [&](int64_t lo, int64_t hi) {
        total += hi - lo;
    });
    EXPECT_EQ(total.load(), 100);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::global().numThreads(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(3);
    for (int rep = 0; rep < 200; rep++) {
        std::atomic<int64_t> total{0};
        pool.parallelFor(0, 37, [&](int64_t lo, int64_t hi) {
            total += hi - lo;
        });
        ASSERT_EQ(total.load(), 37);
    }
}

} // namespace
} // namespace flcnn
