/** @file Strict CLI scalar parsing, including the non-finite rejects. */

#include <gtest/gtest.h>

#include <string>

#include "common/argparse.hh"

namespace flcnn {
namespace {

TEST(ParseIntArg, AcceptsInRangeIntegers)
{
    EXPECT_EQ(parseIntArg("--n", "0", -10, 10), 0);
    EXPECT_EQ(parseIntArg("--n", "-10", -10, 10), -10);
    EXPECT_EQ(parseIntArg("--n", "10", -10, 10), 10);
    EXPECT_EQ(parseIntArgI("--n", "7", 1, 100), 7);
}

TEST(ParseIntArgDeathTest, RejectsMalformedAndOutOfRange)
{
    EXPECT_DEATH(parseIntArg("--n", "abc", 0, 10), "not a valid integer");
    EXPECT_DEATH(parseIntArg("--n", "8garbage", 0, 10),
                 "not a valid integer");
    EXPECT_DEATH(parseIntArg("--n", "", 0, 10), "empty value");
    EXPECT_DEATH(parseIntArg("--n", "11", 0, 10), "out of range");
}

TEST(ParseFloatArg, AcceptsFiniteNumbers)
{
    EXPECT_DOUBLE_EQ(parseFloatArg("--qps", "2.5", 0.0, 10.0), 2.5);
    EXPECT_DOUBLE_EQ(parseFloatArg("--qps", "1e-3", 0.0, 10.0), 1e-3);
    EXPECT_DOUBLE_EQ(parseFloatArg("--qps", "0", 0.0, 10.0), 0.0);
}

TEST(ParseFloatArgDeathTest, RejectsInfinity)
{
    // An open-loop bench at "--qps inf" would spin submitting with
    // zero inter-arrival delay; strtod happily parses every spelling,
    // so the parser must reject them all.
    for (const char *bad : {"inf", "Inf", "INF", "infinity", "-inf",
                            "+inf", "1e999"}) {
        EXPECT_DEATH(parseFloatArg("--qps", bad, 0.0, 1e18),
                     "not a valid finite number")
            << bad;
    }
}

TEST(ParseFloatArgDeathTest, RejectsNaN)
{
    // NaN poisons every downstream comparison (deadlines, intervals)
    // without tripping a range check: NaN < min and NaN > max are both
    // false, so only the isfinite reject catches it.
    for (const char *bad : {"nan", "NaN", "NAN", "-nan", "nan(2)"}) {
        EXPECT_DEATH(parseFloatArg("--qps", bad, 0.0, 1e18),
                     "not a valid finite number")
            << bad;
    }
}

TEST(ParseFloatArgDeathTest, RejectsMalformedAndOutOfRange)
{
    EXPECT_DEATH(parseFloatArg("--qps", "abc", 0.0, 10.0),
                 "not a valid finite number");
    EXPECT_DEATH(parseFloatArg("--qps", "2.5x", 0.0, 10.0),
                 "not a valid finite number");
    EXPECT_DEATH(parseFloatArg("--qps", "", 0.0, 10.0), "empty value");
    EXPECT_DEATH(parseFloatArg("--qps", "11", 0.0, 10.0),
                 "out of range");
}

TEST(ArgValueDeathTest, MissingValueIsFatal)
{
    char flag[] = "--qps";
    char *argv[] = {flag};
    int a = 0;
    EXPECT_DEATH(argValue(1, argv, &a), "requires a value");
}

TEST(ArgValue, ReturnsNextTokenAndAdvances)
{
    char flag[] = "--qps";
    char val[] = "3.5";
    char *argv[] = {flag, val};
    int a = 0;
    EXPECT_STREQ(argValue(2, argv, &a), "3.5");
    EXPECT_EQ(a, 1);
}

} // namespace
} // namespace flcnn
