/** @file Deterministic RNG behavior. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace flcnn {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++) {
        double v = rng.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        int v = rng.range(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DegenerateRange)
{
    Rng rng(11);
    EXPECT_EQ(rng.range(4, 4), 4);
    EXPECT_EQ(rng.range(4, 3), 4);  // hi < lo collapses to lo
}

TEST(Rng, UniformFRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 500; i++) {
        float v = rng.uniformF(-2.5f, 1.5f);
        EXPECT_GE(v, -2.5f);
        EXPECT_LT(v, 1.5f);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 50; i++) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ForkIsIndependentOfParentContinuation)
{
    Rng a(21);
    Rng child = a.fork();
    uint64_t c1 = child.next();
    // Re-derive: same parent seed, same fork point, same child stream.
    Rng b(21);
    Rng child2 = b.fork();
    EXPECT_EQ(child2.next(), c1);
}

TEST(Rng, RoughUniformity)
{
    Rng rng(23);
    int buckets[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; i++)
        buckets[rng.range(0, 9)]++;
    for (int b = 0; b < 10; b++) {
        EXPECT_GT(buckets[b], n / 10 - n / 50);
        EXPECT_LT(buckets[b], n / 10 + n / 50);
    }
}

} // namespace
} // namespace flcnn
