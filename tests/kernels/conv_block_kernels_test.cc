/**
 * @file
 * Multi-filter blocked strip kernels: bit-exact equivalence with the
 * canonical scalar convPoint() and with the single-filter strips
 * across the kernel/stride grid, filter-count and strip-width tails,
 * SIMD-vs-generic dispatch, ring row tables, grouped convolution, and
 * channel-range partial-sum chaining.
 */

#include <gtest/gtest.h>

#include <vector>

#include "kernels/conv_kernels.hh"
#include "kernels/weight_pack.hh"
#include "nn/reference.hh"

namespace flcnn {
namespace {

/** Random input + multi-filter bank for one (K, stride) case. */
struct BlockCase
{
    Tensor in;
    FilterBank fb;
    int stride;
    int outW;

    BlockCase(int k, int s, int channels, int filters, int out_w,
              uint64_t seed)
        : in(Shape{channels, k, s * (out_w - 1) + k}),
          fb(filters, channels, k), stride(s), outW(out_w)
    {
        Rng irng(seed * 6151 + 3);
        in.fillRandom(irng);
        Rng wrng(seed * 13007 + 4);
        fb.fillRandom(wrng);
    }
};

/** Run every block of the packed bank over one output row. */
std::vector<float>
runBlocked(const BlockCase &c, const ConvBlockKernel &bk,
           const PackedWeights &pw)
{
    std::vector<float> dst(
        static_cast<size_t>(c.fb.numFilters()) * c.outW);
    for (int bi = 0; bi < pw.numBlocks(); bi++) {
        convBlockRowTensor(
            bk, pw, bi,
            dst.data() + static_cast<size_t>(pw.block(bi).m0) * c.outW,
            c.outW, c.outW, c.in, 0, 0);
    }
    return dst;
}

/** Every (filter, pixel) must equal the scalar convPoint — bitwise. */
void
expectBlockedMatchesConvPoint(const BlockCase &c)
{
    const ConvBlockKernel bk =
        resolveConvBlockKernel(c.fb.kernel(), c.stride);
    const PackedWeights pw(c.fb);
    std::vector<float> dst = runBlocked(c, bk, pw);
    for (int m = 0; m < c.fb.numFilters(); m++) {
        for (int x = 0; x < c.outW; x++) {
            const float want =
                convPoint(c.in, c.fb, m, 0, x * c.stride, 1,
                          c.fb.numFilters(), nullptr);
            ASSERT_EQ(dst[static_cast<size_t>(m) * c.outW + x], want)
                << "k=" << c.fb.kernel() << " s=" << c.stride
                << " m=" << m << " x=" << x;
        }
    }
}

TEST(ConvBlockKernels, SpecializedGridMatchesConvPoint)
{
    // The zoo's kernel/stride grid; 7 filters exercise the 4/2/1 lane
    // ladder tail and width 37 the 8/4/2/1 pixel remainder ladder.
    uint64_t seed = 0;
    for (int k : {1, 3, 5, 7, 11}) {
        for (int s : {1, 2, 4}) {
            SCOPED_TRACE("k=" + std::to_string(k) +
                         " s=" + std::to_string(s));
            const ConvBlockKernel bk = resolveConvBlockKernel(k, s);
            for (int mr : {1, 2, 4})
                EXPECT_TRUE(bk.specialized(mr)) << "mr=" << mr;
            expectBlockedMatchesConvPoint(
                BlockCase(k, s, 3, 7, 37, ++seed));
        }
    }
}

TEST(ConvBlockKernels, GenericFallbackMatchesConvPoint)
{
    // Shapes outside the specialization table run the runtime-(K,
    // stride) multi-filter path — same contract, same bits.
    uint64_t seed = 100;
    const std::pair<int, int> cases[] = {{2, 1}, {4, 3}, {13, 1}, {3, 3}};
    for (auto [k, s] : cases) {
        SCOPED_TRACE("k=" + std::to_string(k) +
                     " s=" + std::to_string(s));
        const ConvBlockKernel bk = resolveConvBlockKernel(k, s);
        EXPECT_FALSE(bk.specialized(4));
        expectBlockedMatchesConvPoint(
            BlockCase(k, s, 2, 5, 23, ++seed));
    }
}

TEST(ConvBlockKernels, BlockedMatchesSingleFilterStrip)
{
    // The multi-filter block and the single-filter strip must agree
    // bit for bit: both promise convPoint's canonical order.
    for (int k : {1, 3, 5, 7, 11}) {
        for (int s : {1, 2, 4}) {
            BlockCase c(k, s, 3, 4, 29, 300 + k * 10 + s);
            const ConvBlockKernel bk = resolveConvBlockKernel(k, s);
            const ConvKernel ks = resolveConvKernel(k, s);
            const PackedWeights pw(c.fb);
            std::vector<float> blocked = runBlocked(c, bk, pw);
            std::vector<float> strip(static_cast<size_t>(c.outW));
            for (int m = 0; m < c.fb.numFilters(); m++) {
                convRowTensor(ks, strip.data(), c.outW, c.in, c.fb, m,
                              0, 0, 0);
                for (int x = 0; x < c.outW; x++)
                    ASSERT_EQ(
                        blocked[static_cast<size_t>(m) * c.outW + x],
                        strip[static_cast<size_t>(x)])
                        << "k=" << k << " s=" << s << " m=" << m
                        << " x=" << x;
            }
        }
    }
}

TEST(ConvBlockKernels, DispatchedAndGenericProduceIdenticalBits)
{
    // Whatever resolveConvBlockKernel dispatched to (the AVX2 variants
    // in FLCNN_SIMD builds, the scalar specializations otherwise) must
    // be bitwise identical to the portable runtime-(K, stride) block.
    for (int k : {1, 3, 5, 7, 11}) {
        for (int s : {1, 2, 4}) {
            BlockCase c(k, s, 3, 7, 37, 400 + k * 10 + s);
            const ConvBlockKernel fast =
                resolveConvBlockKernel(k, s);
            ConvBlockKernel generic = fast;
            for (int mr = 0; mr <= kConvBlockLanes; mr++)
                generic.fn[mr] = nullptr;
            const PackedWeights pw(c.fb);
            EXPECT_EQ(runBlocked(c, fast, pw),
                      runBlocked(c, generic, pw))
                << "k=" << k << " s=" << s;
        }
    }
}

TEST(ConvBlockKernels, StripWidthsCoverEveryRemainderPath)
{
    // Strip counts 1..19 hit every combination of the 8/4/2/1 pixel
    // ladder, at a stride that exercises the strided vector loads.
    BlockCase c(3, 2, 3, 4, 19, 77);
    const ConvBlockKernel bk = resolveConvBlockKernel(3, 2);
    const PackedWeights pw(c.fb);
    for (int count = 1; count <= 19; count++) {
        std::vector<float> dst(static_cast<size_t>(4) * count);
        convBlockRowTensor(bk, pw, 0, dst.data(), count, count, c.in,
                           0, 0);
        for (int m = 0; m < 4; m++)
            for (int x = 0; x < count; x++) {
                const float want = convPoint(c.in, c.fb, m, 0, x * 2,
                                             1, 4, nullptr);
                ASSERT_EQ(dst[static_cast<size_t>(m) * count + x], want)
                    << "count=" << count << " m=" << m << " x=" << x;
            }
    }
}

TEST(ConvBlockKernels, FilterCountsCoverEveryLaneTail)
{
    // 1..7 filters: every 4/2/1 ladder shape, including the mixed
    // tails (5 = 4+1, 6 = 4+2, 7 = 4+2+1).
    for (int filters = 1; filters <= 7; filters++) {
        SCOPED_TRACE("filters=" + std::to_string(filters));
        expectBlockedMatchesConvPoint(
            BlockCase(3, 1, 3, filters, 13, 500 + filters));
    }
}

TEST(ConvBlockKernels, RingRowOffsetsMatchLinearRows)
{
    // The line-buffer executor hands the blocked kernel modular ring
    // rows via row_off; the result must match the linear-tensor call
    // bit for bit.
    const int k = 3, s = 1, cap = 4, channels = 3, out_w = 21;
    const int in_h = 6;
    Tensor in(Shape{channels, in_h, out_w + k - 1});
    Rng irng(91);
    in.fillRandom(irng);
    FilterBank fb(5, channels, k);
    Rng wrng(92);
    fb.fillRandom(wrng);

    const ConvBlockKernel bk = resolveConvBlockKernel(k, s);
    const PackedWeights pw(fb);
    const int64_t w = in.shape().w;

    Tensor ring(Shape{channels, cap, static_cast<int>(w)});
    const int y0 = 3;  // rows 3, 4, 5 -> ring rows 3, 0, 1: wraps
    for (int n = 0; n < channels; n++)
        for (int i = 0; i < k; i++)
            for (int x = 0; x < w; x++)
                ring(n, (y0 + i) % cap, x) = in(n, y0 + i, x);

    int64_t ring_off[kMaxConvKernel];
    for (int i = 0; i < k; i++)
        ring_off[i] = static_cast<int64_t>((y0 + i) % cap) * w;

    for (int bi = 0; bi < pw.numBlocks(); bi++) {
        const PackedBlock &blk = pw.block(bi);
        std::vector<float> got(
            static_cast<size_t>(blk.lanes) * out_w);
        for (int f = 0; f < blk.lanes; f++)
            for (int x = 0; x < out_w; x++)
                got[static_cast<size_t>(f) * out_w + x] =
                    pw.bias(blk.m0 + f);
        bk.run(blk.lanes, got.data(), out_w, out_w,
               ring.rowPtr(0, 0, 0), static_cast<int64_t>(cap) * w,
               ring_off, pw.panel(bi), channels);

        std::vector<float> want(
            static_cast<size_t>(blk.lanes) * out_w);
        convBlockRowTensor(bk, pw, bi, want.data(), out_w, out_w, in,
                           y0, 0);
        EXPECT_EQ(got, want) << "bi=" << bi;
    }
}

TEST(ConvBlockKernels, GroupedConvolutionMatchesConvPoint)
{
    // AlexNet-style two-group conv: blocks never straddle the group
    // boundary and nBase selects the group's channel slice.
    const int groups = 2, total_m = 6, n_per_group = 2, k = 5;
    Tensor in(Shape{groups * n_per_group, k, 17});
    Rng irng(61);
    in.fillRandom(irng);
    FilterBank fb(total_m, n_per_group, k);
    Rng wrng(62);
    fb.fillRandom(wrng);

    const ConvBlockKernel bk = resolveConvBlockKernel(k, 1);
    const PackedWeights pw(fb, groups);
    const int out_w = in.shape().w - k + 1;
    std::vector<float> dst(static_cast<size_t>(total_m) * out_w);
    for (int bi = 0; bi < pw.numBlocks(); bi++) {
        convBlockRowTensor(
            bk, pw, bi,
            dst.data() + static_cast<size_t>(pw.block(bi).m0) * out_w,
            out_w, out_w, in, 0, 0);
    }
    for (int m = 0; m < total_m; m++)
        for (int x = 0; x < out_w; x++) {
            const float want =
                convPoint(in, fb, m, 0, x, groups, total_m, nullptr);
            ASSERT_EQ(dst[static_cast<size_t>(m) * out_w + x], want)
                << "m=" << m << " x=" << x;
        }
}

TEST(ConvBlockKernels, ChannelRangeChainingIsBitExact)
{
    // The baseline accelerator accumulates a tile over serial Tn
    // channel blocks on top of the previous block's partial sums,
    // addressing the panel sub-range at n0*K*K*lanes. Chained calls
    // must reproduce the one-shot result bit for bit (same canonical
    // order, just split).
    const int k = 3, channels = 5, filters = 4, out_w = 15;
    BlockCase c(k, 1, channels, filters, out_w, 83);
    const ConvBlockKernel bk = resolveConvBlockKernel(k, 1);
    const PackedWeights pw(c.fb);
    const PackedBlock &blk = pw.block(0);
    const Shape &sh = c.in.shape();
    const int64_t ch_stride = static_cast<int64_t>(sh.h) * sh.w;
    int64_t row_off[kMaxConvKernel];
    linearRowOffsets(row_off, k, 0, sh.w);

    std::vector<float> chained(
        static_cast<size_t>(blk.lanes) * out_w);
    for (int f = 0; f < blk.lanes; f++)
        for (int x = 0; x < out_w; x++)
            chained[static_cast<size_t>(f) * out_w + x] =
                pw.bias(blk.m0 + f);
    const int splits[][2] = {{0, 2}, {2, 3}};  // [n0, tnn]
    for (auto [n0, tnn] : splits) {
        bk.run(blk.lanes, chained.data(), out_w, out_w,
               c.in.rowPtr(n0, 0, 0), ch_stride, row_off,
               pw.panel(0) + static_cast<int64_t>(n0) * k * k *
                                 blk.lanes,
               tnn);
    }

    std::vector<float> oneshot(
        static_cast<size_t>(blk.lanes) * out_w);
    convBlockRowTensor(bk, pw, 0, oneshot.data(), out_w, out_w, c.in,
                       0, 0);
    EXPECT_EQ(chained, oneshot);
}

} // namespace
} // namespace flcnn
