/**
 * @file
 * Register-tiled strip kernels: bit-exact equivalence with the
 * canonical scalar convPoint() across the kernel/stride grid, grouped
 * convolution, odd strip widths (the 8/4/2/1 remainder ladder), ring
 * row-offset tables, and thread counts.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/thread_pool.hh"
#include "kernels/conv_kernels.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

/** Build a random input and filter bank for one (K, stride) case. */
struct ConvCase
{
    Tensor in;
    FilterBank fb;
    int stride;
    int outW, outH;

    ConvCase(int k, int s, int channels, int filters, int out_w,
             int out_h, uint64_t seed)
        : in(Shape{channels, s * (out_h - 1) + k, s * (out_w - 1) + k}),
          fb(filters, channels, k), stride(s), outW(out_w), outH(out_h)
    {
        Rng irng(seed * 7919 + 1);
        in.fillRandom(irng);
        Rng wrng(seed * 104729 + 2);
        fb.fillRandom(wrng);
    }
};

/** Every pixel of every (m, y) output row via convRowTensor must equal
 *  the scalar convPoint — bitwise, not approximately. */
void
expectRowsMatchConvPoint(const ConvCase &c)
{
    const ConvKernel ks = resolveConvKernel(c.fb.kernel(), c.stride);
    std::vector<float> dst(static_cast<size_t>(c.outW));
    for (int m = 0; m < c.fb.numFilters(); m++) {
        for (int y = 0; y < c.outH; y++) {
            convRowTensor(ks, dst.data(), c.outW, c.in, c.fb, m, 0,
                          y * c.stride, 0);
            for (int x = 0; x < c.outW; x++) {
                const float want =
                    convPoint(c.in, c.fb, m, y * c.stride, x * c.stride,
                              1, c.fb.numFilters(), nullptr);
                ASSERT_EQ(dst[static_cast<size_t>(x)], want)
                    << "k=" << c.fb.kernel() << " s=" << c.stride
                    << " m=" << m << " y=" << y << " x=" << x;
            }
        }
    }
}

TEST(ConvKernels, SpecializedGridMatchesConvPoint)
{
    // The zoo's kernel/stride grid, all dispatched to specialized
    // variants; width 37 drives the 8/4/2/1 strip remainder ladder.
    uint64_t seed = 0;
    for (int k : {1, 3, 5, 7, 11}) {
        for (int s : {1, 2, 4}) {
            SCOPED_TRACE("k=" + std::to_string(k) +
                         " s=" + std::to_string(s));
            EXPECT_TRUE(resolveConvKernel(k, s).specialized());
            expectRowsMatchConvPoint(ConvCase(k, s, 3, 4, 37, 3, ++seed));
        }
    }
}

TEST(ConvKernels, GenericFallbackMatchesConvPoint)
{
    // Shapes outside the specialization table run the runtime-K path —
    // same contract, same bits.
    uint64_t seed = 100;
    const std::pair<int, int> cases[] = {{2, 1}, {4, 3}, {13, 1}, {3, 3}};
    for (auto [k, s] : cases) {
        SCOPED_TRACE("k=" + std::to_string(k) +
                     " s=" + std::to_string(s));
        EXPECT_FALSE(resolveConvKernel(k, s).specialized());
        expectRowsMatchConvPoint(ConvCase(k, s, 2, 3, 23, 2, ++seed));
    }
}

TEST(ConvKernels, SpecializedAndGenericProduceIdenticalBits)
{
    for (int k : {1, 3, 5, 7, 11}) {
        for (int s : {1, 2, 4}) {
            ConvCase c(k, s, 3, 2, 29, 1, 1000 + k * 10 + s);
            const ConvKernel spec = resolveConvKernel(k, s);
            ASSERT_TRUE(spec.specialized());

            int64_t row_off[kMaxConvKernel];
            linearRowOffsets(row_off, k, 0, c.in.shape().w);
            const int64_t ch_stride =
                static_cast<int64_t>(c.in.shape().h) * c.in.shape().w;

            std::vector<float> a(29, 0.0f), b(29, 0.0f);
            for (int x = 0; x < 29; x++)
                a[static_cast<size_t>(x)] =
                    b[static_cast<size_t>(x)] = c.fb.bias(0);
            spec.fn(a.data(), 29, c.in.rowPtr(0, 0, 0), ch_stride,
                    row_off, c.fb.wRow(0, 0, 0), c.fb.numChannels());
            ConvKernel::convStripGeneric(
                b.data(), 29, c.in.rowPtr(0, 0, 0), ch_stride, row_off,
                c.fb.wRow(0, 0, 0), c.fb.numChannels(), k, s);
            EXPECT_EQ(a, b) << "k=" << k << " s=" << s;
        }
    }
}

TEST(ConvKernels, StripWidthsCoverEveryRemainderPath)
{
    // Strip counts 1..19 hit every combination of the 8/4/2/1 ladder.
    ConvCase c(3, 1, 3, 2, 19, 1, 77);
    const ConvKernel ks = resolveConvKernel(3, 1);
    for (int count = 1; count <= 19; count++) {
        std::vector<float> dst(static_cast<size_t>(count));
        convRowTensor(ks, dst.data(), count, c.in, c.fb, 1, 0, 0, 0);
        for (int x = 0; x < count; x++) {
            const float want =
                convPoint(c.in, c.fb, 1, 0, x, 1, 2, nullptr);
            ASSERT_EQ(dst[static_cast<size_t>(x)], want)
                << "count=" << count << " x=" << x;
        }
    }
}

TEST(ConvKernels, GroupedConvolutionMatchesConvPoint)
{
    // AlexNet-style two-group conv: filters see only their group's
    // channel slice, selected by the caller through n_base.
    const int groups = 2, total_m = 6, n_per_group = 2, k = 5;
    Tensor in(Shape{groups * n_per_group, 13, 17});
    Rng irng(31);
    in.fillRandom(irng);
    FilterBank fb(total_m, n_per_group, k);
    Rng wrng(32);
    fb.fillRandom(wrng);

    const ConvKernel ks = resolveConvKernel(k, 1);
    const int out_w = in.shape().w - k + 1;
    std::vector<float> dst(static_cast<size_t>(out_w));
    for (int m = 0; m < total_m; m++) {
        const int n_base = (m / (total_m / groups)) * n_per_group;
        for (int y = 0; y + k <= in.shape().h; y++) {
            convRowTensor(ks, dst.data(), out_w, in, fb, m, n_base, y, 0);
            for (int x = 0; x < out_w; x++) {
                const float want =
                    convPoint(in, fb, m, y, x, groups, total_m, nullptr);
                ASSERT_EQ(dst[static_cast<size_t>(x)], want)
                    << "m=" << m << " y=" << y << " x=" << x;
            }
        }
    }
}

TEST(ConvKernels, RingRowOffsetsMatchLinearRows)
{
    // The line-buffer executor hands the kernel modular ring rows via
    // the row_off table; feeding the same rows through a ring layout
    // must reproduce the linear-tensor result bit for bit.
    const int k = 3, cap = 4, channels = 3, out_w = 21;
    ConvCase c(k, 1, channels, 2, out_w, 6, 55);
    const ConvKernel ks = resolveConvKernel(k, 1);
    const int64_t w = c.in.shape().w;

    Tensor ring(Shape{channels, cap, static_cast<int>(w)});
    const int y0 = 3;  // rows 3, 4, 5 -> ring rows 3, 0, 1: wraps
    for (int n = 0; n < channels; n++)
        for (int i = 0; i < k; i++)
            for (int x = 0; x < w; x++)
                ring(n, (y0 + i) % cap, x) = c.in(n, y0 + i, x);

    int64_t ring_off[kMaxConvKernel];
    for (int i = 0; i < k; i++)
        ring_off[i] = static_cast<int64_t>((y0 + i) % cap) * w;

    std::vector<float> got(out_w, c.fb.bias(0));
    ks.run(got.data(), out_w, ring.rowPtr(0, 0, 0),
           static_cast<int64_t>(cap) * w, ring_off, c.fb.wRow(0, 0, 0),
           channels);

    std::vector<float> want(static_cast<size_t>(out_w));
    convRowTensor(ks, want.data(), out_w, c.in, c.fb, 0, 0, y0, 0);
    EXPECT_EQ(got, want);
}

/** RAII: run a scope at a fixed global thread count, then restore the
 *  default so other tests are unaffected. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(int n) { ThreadPool::setGlobalThreads(n); }
    ~ScopedThreads() { ThreadPool::setGlobalThreads(0); }
};

TEST(ConvKernels, ReferenceExecutorBitExactAcrossThreadCounts)
{
    // The reference executor's conv path now routes through the strip
    // kernels; its output must stay invariant to the pool width for
    // every dispatch variant (the fused executors have their own
    // differential sweeps in tests/fusion and tests/accel).
    const int hw = ThreadPool::defaultThreads();
    uint64_t seed = 500;
    for (int k : {1, 3, 5, 11}) {
        for (int s : {1, 2}) {
            seed++;
            Network net("kt" + std::to_string(seed), Shape{3, 29, 31});
            net.add(LayerSpec::conv("c1", 4, k, s));
            net.add(LayerSpec::relu("r1"));

            Rng wrng(seed);
            NetworkWeights weights(net, wrng);
            Tensor input(net.inputShape());
            Rng irng(seed ^ 0x5a5a);
            input.fillRandom(irng);

            Tensor ref;
            {
                ScopedThreads serial(1);
                ref = runRange(net, weights, input, 0,
                               net.numLayers() - 1);
            }
            for (int threads : {1, 2, 4, hw}) {
                ScopedThreads scope(threads);
                Tensor out = runRange(net, weights, input, 0,
                                      net.numLayers() - 1);
                CompareResult cmp = compareTensors(ref, out);
                ASSERT_TRUE(cmp.match)
                    << "k=" << k << " s=" << s << " threads=" << threads
                    << ": " << cmp.str();
            }
        }
    }
}

} // namespace
} // namespace flcnn
