/**
 * @file
 * Numeric foundations of the precision modes: the binary16 converters
 * (exhaustive round-trip + round-to-nearest-even spot checks), the
 * quantization parameter helpers (including degenerate ranges), and
 * the int8 strip kernels — vector and generic paths must produce
 * identical exact i32 accumulators, and the full staged row driver
 * must equal an independent naive evaluation bit for bit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "kernels/conv_layer.hh"
#include "kernels/fp16.hh"
#include "kernels/quant.hh"
#include "kernels/weight_pack.hh"
#include "tensor/tensor.hh"

namespace flcnn {
namespace {

// ---------------------------------------------------------------------
// binary16 converters

TEST(Fp16, RoundTripIsIdentityForEveryHalfPattern)
{
    // half -> float is exact, so float -> half must restore every one
    // of the 65536 bit patterns (NaNs stay NaN; payload may differ).
    for (uint32_t bits = 0; bits < 0x10000; bits++) {
        const uint16_t h = static_cast<uint16_t>(bits);
        const float f = halfToFloat(h);
        const uint16_t back = floatToHalf(f);
        const bool is_nan = (h & 0x7c00) == 0x7c00 && (h & 0x03ff) != 0;
        if (is_nan) {
            EXPECT_TRUE(std::isnan(f)) << "bits=" << bits;
            EXPECT_EQ(back & 0x7c00, 0x7c00) << "bits=" << bits;
            EXPECT_NE(back & 0x03ff, 0) << "bits=" << bits;
        } else {
            EXPECT_EQ(back, h) << "bits=" << bits;
        }
    }
}

TEST(Fp16, KnownValues)
{
    EXPECT_EQ(floatToHalf(0.0f), 0x0000);
    EXPECT_EQ(floatToHalf(-0.0f), 0x8000);
    EXPECT_EQ(floatToHalf(1.0f), 0x3c00);
    EXPECT_EQ(floatToHalf(-2.0f), 0xc000);
    EXPECT_EQ(floatToHalf(65504.0f), 0x7bff);   // largest finite half
    EXPECT_EQ(floatToHalf(65536.0f), 0x7c00);   // overflows to +inf
    EXPECT_EQ(floatToHalf(-1e30f), 0xfc00);     // -inf
    EXPECT_EQ(floatToHalf(5.9604645e-8f), 0x0001);  // smallest subnormal
    EXPECT_FLOAT_EQ(halfToFloat(0x3c00), 1.0f);
    EXPECT_FLOAT_EQ(halfToFloat(0x0001), 5.9604645e-8f);
    EXPECT_TRUE(std::isinf(halfToFloat(0x7c00)));
}

TEST(Fp16, RoundsToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
    // ties go to the even significand, 1.0.
    EXPECT_EQ(floatToHalf(1.0f + 0x1p-11f), 0x3c00);
    // 1 + 3*2^-11 ties between 1+2^-10 and 1+2^-9: even is 1+2^-9.
    EXPECT_EQ(floatToHalf(1.0f + 3 * 0x1p-11f), 0x3c02);
    // Anything past the halfway point rounds up.
    EXPECT_EQ(floatToHalf(1.0f + 0x1p-11f + 0x1p-20f), 0x3c01);
    // roundToHalf is the composition.
    EXPECT_FLOAT_EQ(roundToHalf(1.0f + 0x1p-11f), 1.0f);
}

TEST(Fp16, RoundTripIsIdentityOnRandomFloats)
{
    // floatToHalf(halfToFloat(floatToHalf(x))) == floatToHalf(x):
    // rounding through half is idempotent.
    Rng rng(31);
    for (int i = 0; i < 10000; i++) {
        const float x = rng.uniformF(-100.0f, 100.0f);
        const float r = roundToHalf(x);
        EXPECT_EQ(roundToHalf(r), r) << "x=" << x;
        // |x - r| <= 2^-11 * |x| for normal halves.
        EXPECT_LE(std::fabs(x - r), std::fabs(x) * 0x1p-10f + 1e-7f);
    }
}

// ---------------------------------------------------------------------
// quantization parameters

TEST(Quant, ActQuantCoversRangeAndZero)
{
    const ActQuant q = chooseActQuant(-1.0f, 1.0f);
    EXPECT_FLOAT_EQ(q.scale, 2.0f / 255.0f);
    // 0.0 quantizes exactly to the zero point.
    EXPECT_EQ(quantizeAct(0.0f, 1.0f / q.scale, q.zp), q.zp);
    // Range ends land within one step of the ends of [0, 255] (the
    // scale itself rounds to float, so the exact endpoint can fall
    // just inside the grid).
    EXPECT_LE(quantizeAct(-1.0f, 1.0f / q.scale, q.zp), 1);
    EXPECT_GE(quantizeAct(1.0f, 1.0f / q.scale, q.zp), 254);
    // All-positive observed range still includes zero.
    const ActQuant p = chooseActQuant(0.5f, 2.0f);
    EXPECT_FLOAT_EQ(p.scale, 2.0f / 255.0f);
    EXPECT_EQ(p.zp, 0);
}

TEST(Quant, DegenerateRangesFallBackToUnitScale)
{
    for (auto [mn, mx] : {std::pair<float, float>{0.0f, 0.0f},
                          {5.0f, 5.0f},   // widened to [0, 5]: fine
                          {1.0f, -1.0f}}) {
        const ActQuant q = chooseActQuant(mn, mx);
        EXPECT_GT(q.scale, 0.0f) << mn << "," << mx;
        EXPECT_TRUE(std::isfinite(q.scale)) << mn << "," << mx;
        EXPECT_GE(q.zp, 0);
        EXPECT_LE(q.zp, 255);
    }
    EXPECT_FLOAT_EQ(chooseActQuant(0.0f, 0.0f).scale, 1.0f);
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_FLOAT_EQ(chooseActQuant(-inf, inf).scale, 1.0f);
    EXPECT_FLOAT_EQ(chooseWeightScale(0.0f), 1.0f);
    EXPECT_FLOAT_EQ(chooseWeightScale(6.3f), 0.1f);
}

TEST(Quant, WeightQuantClampsToSevenBits)
{
    // The +/-63 clamp is what makes maddubs saturation impossible.
    EXPECT_EQ(quantizeWeight(100.0f, 1.0f), kWeightQuantMax);
    EXPECT_EQ(quantizeWeight(-100.0f, 1.0f), -kWeightQuantMax);
    EXPECT_EQ(quantizeWeight(0.0f, 0.1f), 0);
    EXPECT_EQ(quantizeWeight(0.35f, 0.1f), 4);  // round to nearest
}

// ---------------------------------------------------------------------
// int8 strip kernels

std::vector<float>
filterScales(const FilterBank &fb)
{
    std::vector<float> ws(static_cast<size_t>(fb.numFilters()));
    for (int m = 0; m < fb.numFilters(); m++) {
        float mx = 0.0f;
        for (int n = 0; n < fb.numChannels(); n++)
            for (int i = 0; i < fb.kernel(); i++)
                for (int j = 0; j < fb.kernel(); j++)
                    mx = std::max(mx, std::fabs(fb.w(m, n, i, j)));
        ws[static_cast<size_t>(m)] = chooseWeightScale(mx);
    }
    return ws;
}

/** Resolved-vs-generic: whatever resolveConvBlockKernelI8 dispatches
 *  (AVX2 when built + supported) must produce the exact i32 sums of
 *  the portable loop, for every lane width and tabled kernel size. */
TEST(ConvKernelsI8, ResolvedMatchesGenericExactly)
{
    Rng rng(41);
    for (int k : {1, 3, 5, 7, 11}) {
        const int c = 3, h = k + 6, w = 23;
        Tensor src(c, h, w);
        src.fillRandom(rng, -1.0f, 1.0f);
        const ActQuant act = chooseActQuant(-1.0f, 1.0f);
        ConvStage st;
        st.configure(Precision::Int8, c, h, w);
        stageConvInputI8(st, src, act, 0, h);

        FilterBank fb(7, c, k);  // blocks of 4, 2, 1 lanes
        fb.fillRandom(rng);
        PackedWeightsI8 pw(fb, 1, filterScales(fb));
        const ConvBlockKernelI8 bk = resolveConvBlockKernelI8(k, 1);
        ASSERT_EQ(bk.k, k);

        const int count = w - k + 1;
        for (int bi = 0; bi < pw.numBlocks(); bi++) {
            const int mr = pw.block(bi).lanes;
            int64_t row_off[kMaxConvKernel];
            for (int i = 0; i < k; i++)
                row_off[i] = static_cast<int64_t>(i + 2) * st.stageW;
            std::vector<int32_t> got(static_cast<size_t>(mr) * count, 0);
            std::vector<int32_t> want(got);
            bk.run(mr, got.data(), count, count, st.u8.data(),
                   st.chStride(), row_off, pw.panel(bi), c);
            ConvBlockKernelI8::convBlockStripI8Generic(
                mr, want.data(), count, count, st.u8.data(),
                st.chStride(), row_off, pw.panel(bi), c, k, 1);
            EXPECT_EQ(got, want) << "k=" << k << " mr=" << mr;
        }
    }
}

/** The stride-4 vector path (AlexNet conv1's k=11 s=4 shape, the
 *  int8 serving regression's hot kernel) against the portable loop:
 *  strided pixel gathers must produce the exact i32 sums. */
TEST(ConvKernelsI8, Stride4ResolvedMatchesGenericExactly)
{
    Rng rng(53);
    for (int k : {3, 11}) {
        const int stride = 4, c = 3, h = k + 9, w = 4 * 9 + k;
        Tensor src(c, h, w);
        src.fillRandom(rng, -1.0f, 1.0f);
        const ActQuant act = chooseActQuant(-1.0f, 1.0f);
        ConvStage st;
        st.configure(Precision::Int8, c, h, w);
        stageConvInputI8(st, src, act, 0, h);

        FilterBank fb(7, c, k);
        fb.fillRandom(rng);
        PackedWeightsI8 pw(fb, 1, filterScales(fb));
        const ConvBlockKernelI8 bk = resolveConvBlockKernelI8(k, stride);
        ASSERT_EQ(bk.sx, stride);

        const int count = (w - k) / stride + 1;
        for (int bi = 0; bi < pw.numBlocks(); bi++) {
            const int mr = pw.block(bi).lanes;
            int64_t row_off[kMaxConvKernel];
            for (int i = 0; i < k; i++)
                row_off[i] = static_cast<int64_t>(i) * st.stageW;
            std::vector<int32_t> got(static_cast<size_t>(mr) * count, 0);
            std::vector<int32_t> want(got);
            bk.run(mr, got.data(), count, count, st.u8.data(),
                   st.chStride(), row_off, pw.panel(bi), c);
            ConvBlockKernelI8::convBlockStripI8Generic(
                mr, want.data(), count, count, st.u8.data(),
                st.chStride(), row_off, pw.panel(bi), c, k, stride);
            EXPECT_EQ(got, want) << "k=" << k << " mr=" << mr;
        }
    }
}

/** The packed row driver against an independent naive evaluation of
 *  the same quantized conv: identical integer sums through the
 *  identical epilogue expression means bit-equal floats. */
TEST(ConvKernelsI8, RowDriverMatchesNaiveQuantizedConvBitExactly)
{
    Rng rng(43);
    for (int stride : {1, 2, 4}) {
        const int k = 3, c = 4, m = 6, h = 13, w = 19;
        Tensor src(c, h, w);
        src.fillRandom(rng, -2.0f, 2.0f);
        const ActQuant act = chooseActQuant(-2.0f, 2.0f);
        ConvStage st;
        st.configure(Precision::Int8, c, h, w);
        stageConvInputI8(st, src, act, 0, h);

        FilterBank fb(m, c, k);
        fb.fillRandom(rng);
        const std::vector<float> ws = filterScales(fb);
        PackedWeightsI8 pw(fb, 1, ws);
        const ConvBlockKernelI8 bk = resolveConvBlockKernelI8(k, stride);

        const int out_h = (h - k) / stride + 1;
        const int out_w = (w - k) / stride + 1;
        Tensor out(m, out_h, out_w);
        const int64_t plane = static_cast<int64_t>(out_h) * out_w;
        for (int bi = 0; bi < pw.numBlocks(); bi++) {
            for (int y = 0; y < out_h; y++) {
                int row_idx[kMaxConvKernel];
                for (int i = 0; i < k; i++)
                    row_idx[i] = y * stride + i;
                convBlockRowI8(bk, pw, bi,
                               &out(pw.block(bi).m0, y, 0), plane,
                               out_w, st, row_idx, 0, act);
            }
        }

        for (int f = 0; f < m; f++) {
            for (int y = 0; y < out_h; y++) {
                for (int x = 0; x < out_w; x++) {
                    int64_t acc = 0, wsum = 0;
                    for (int n = 0; n < c; n++)
                        for (int i = 0; i < k; i++)
                            for (int j = 0; j < k; j++) {
                                const int8_t wq = quantizeWeight(
                                    fb.w(f, n, i, j),
                                    ws[static_cast<size_t>(f)]);
                                const uint8_t q =
                                    st.u8[static_cast<size_t>(
                                        n * st.chStride() +
                                        (y * stride + i) * st.stageW +
                                        x * stride + j)];
                                acc += static_cast<int64_t>(wq) * q;
                                wsum += wq;
                            }
                    ASSERT_EQ(wsum, pw.wsum(f));
                    const float s =
                        act.scale * ws[static_cast<size_t>(f)];
                    const float want =
                        fb.bias(f) +
                        s * static_cast<float>(
                                acc - static_cast<int64_t>(act.zp) *
                                          wsum);
                    ASSERT_EQ(out(f, y, x), want)
                        << "stride=" << stride << " f=" << f << " y="
                        << y << " x=" << x;
                }
            }
        }
    }
}

/** Staging is idempotent and restricted to the requested rows. */
TEST(ConvStage, StagingIsIdempotentAndRowScoped)
{
    Rng rng(47);
    const int c = 2, h = 8, w = 10;
    Tensor src(c, h, w);
    src.fillRandom(rng, -1.0f, 1.0f);
    const ActQuant act = chooseActQuant(-1.0f, 1.0f);
    ConvStage st;
    st.configure(Precision::Int8, c, h, w);
    stageConvInputI8(st, src, act, 2, 5);
    const std::vector<uint8_t> once = st.u8;
    stageConvInputI8(st, src, act, 0, h);
    stageConvInputI8(st, src, act, 2, 5);  // restage: same bytes
    // Rows [2, 5) were identical in the partial and full stagings.
    for (int n = 0; n < c; n++)
        for (int r = 2; r < 5; r++)
            for (int x = 0; x < w; x++) {
                const size_t idx = static_cast<size_t>(
                    n * st.chStride() + r * st.stageW + x);
                EXPECT_EQ(st.u8[idx], once[idx]);
            }
    // The pad apron stays zero (the kernels' overread guarantee).
    for (int n = 0; n < c; n++)
        for (int r = 0; r < h; r++)
            for (int x = w; x < st.stageW; x++)
                EXPECT_EQ(st.u8[static_cast<size_t>(
                              n * st.chStride() + r * st.stageW + x)],
                          0);
}

} // namespace
} // namespace flcnn
