/**
 * @file
 * PackedWeights: the filter-interleaved (n, i, j, m-lane) panel layout
 * is a bit-exact permutation of the FilterBank, the 4/2/1 lane ladder
 * restarts at group and m-tile boundaries, and the cache returns one
 * packed bank per key.
 */

#include <gtest/gtest.h>

#include <vector>

#include "kernels/weight_pack.hh"
#include "nn/reference.hh"

namespace flcnn {
namespace {

FilterBank
randomBank(int m, int n, int k, uint64_t seed)
{
    FilterBank fb(m, n, k);
    Rng rng(seed);
    fb.fillRandom(rng);
    return fb;
}

TEST(WeightPack, PanelIsABitExactPermutationOfTheBank)
{
    // 7 filters: a 4-lane, a 2-lane, and a 1-lane block. Every weight
    // must appear at panel index ((n*K + i)*K + j)*lanes + f, verbatim.
    const int m = 7, n = 3, k = 3;
    FilterBank fb = randomBank(m, n, k, 21);
    PackedWeights pw(fb);

    ASSERT_EQ(pw.numBlocks(), 3);
    EXPECT_EQ(pw.block(0).m0, 0);
    EXPECT_EQ(pw.block(0).lanes, 4);
    EXPECT_EQ(pw.block(1).m0, 4);
    EXPECT_EQ(pw.block(1).lanes, 2);
    EXPECT_EQ(pw.block(2).m0, 6);
    EXPECT_EQ(pw.block(2).lanes, 1);
    EXPECT_EQ(pw.bytes(),
              static_cast<int64_t>(m) * n * k * k * 4);

    for (int bi = 0; bi < pw.numBlocks(); bi++) {
        const PackedBlock &b = pw.block(bi);
        const float *panel = pw.panel(bi);
        for (int f = 0; f < b.lanes; f++) {
            EXPECT_EQ(pw.blockOf(b.m0 + f), bi);
            for (int ch = 0; ch < n; ch++)
                for (int i = 0; i < k; i++)
                    for (int j = 0; j < k; j++) {
                        const int64_t idx =
                            ((static_cast<int64_t>(ch) * k + i) * k + j) *
                                b.lanes +
                            f;
                        ASSERT_EQ(panel[idx], fb.w(b.m0 + f, ch, i, j))
                            << "bi=" << bi << " f=" << f << " n=" << ch
                            << " i=" << i << " j=" << j;
                    }
        }
    }
    for (int f = 0; f < m; f++)
        EXPECT_EQ(pw.bias(f), fb.bias(f));
}

TEST(WeightPack, LaneLadderRestartsAtGroupBoundaries)
{
    // 2 groups x 3 filters: each group must pack as 2+1 lanes (a block
    // never straddles the boundary), and nBase must select the group's
    // input-channel window.
    const int m = 6, n = 2, k = 3, groups = 2;
    FilterBank fb = randomBank(m, n, k, 22);
    PackedWeights pw(fb, groups);

    ASSERT_EQ(pw.numBlocks(), 4);
    const int want_m0[] = {0, 2, 3, 5};
    const int want_lanes[] = {2, 1, 2, 1};
    const int want_nbase[] = {0, 0, n, n};
    for (int bi = 0; bi < 4; bi++) {
        EXPECT_EQ(pw.block(bi).m0, want_m0[bi]) << "bi=" << bi;
        EXPECT_EQ(pw.block(bi).lanes, want_lanes[bi]) << "bi=" << bi;
        EXPECT_EQ(pw.nBase(bi), want_nbase[bi]) << "bi=" << bi;
    }
}

TEST(WeightPack, LaneLadderRestartsAtMTileBoundaries)
{
    // m_tile=3 over 8 filters: tiles [0,3), [3,6), [6,8) must each be a
    // whole number of blocks (2+1, 2+1, 2), so the baseline
    // accelerator's Tm loop can address a tile as [blockOf(m0),
    // blockOf(m0+tm-1)].
    const int m = 8, n = 2, k = 3;
    FilterBank fb = randomBank(m, n, k, 23);
    PackedWeights pw(fb, 1, 3);

    ASSERT_EQ(pw.numBlocks(), 5);
    const int want_m0[] = {0, 2, 3, 5, 6};
    const int want_lanes[] = {2, 1, 2, 1, 2};
    for (int bi = 0; bi < 5; bi++) {
        EXPECT_EQ(pw.block(bi).m0, want_m0[bi]) << "bi=" << bi;
        EXPECT_EQ(pw.block(bi).lanes, want_lanes[bi]) << "bi=" << bi;
    }
    // Tile ranges resolve to whole block spans.
    EXPECT_EQ(pw.blockOf(0), 0);
    EXPECT_EQ(pw.blockOf(2), 1);
    EXPECT_EQ(pw.blockOf(3), 2);
    EXPECT_EQ(pw.blockOf(5), 3);
    EXPECT_EQ(pw.blockOf(7), 4);

    // An m_tile wider than the group degenerates to the plain ladder.
    PackedWeights wide(fb, 1, 100);
    ASSERT_EQ(wide.numBlocks(), 2);
    EXPECT_EQ(wide.block(0).lanes, 4);
    EXPECT_EQ(wide.block(1).lanes, 4);
}

TEST(WeightPack, CachePacksOncePerKey)
{
    FilterBank fb = randomBank(4, 2, 3, 24);
    WeightPackCache cache;
    const PackedWeights &a = cache.get(7, fb);
    const PackedWeights &b = cache.get(7, fb);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 1);
    // A different layer key is a cache miss — but the bank content is
    // identical, so the shared registry resolves it to the *same* pack
    // (content-addressed dedup across layers, executors, and pools).
    const PackedWeights &c = cache.get(8, fb);
    EXPECT_EQ(&a, &c);
    EXPECT_EQ(cache.misses(), 2);
    // Different content under yet another key must not collide.
    FilterBank other = randomBank(4, 2, 3, 77);
    const PackedWeights &d = cache.get(9, other);
    EXPECT_NE(&a, &d);
    EXPECT_EQ(cache.misses(), 3);
}

TEST(WeightPack, SharedRegistryDedupsAcrossCaches)
{
    // Two executors (or two serving pools) each own a private
    // WeightPackCache; identical bank content at the same layout must
    // resolve to one shared pack, and the second resolve must be a
    // registry hit, not a rebuild.
    FilterBank fb = randomBank(6, 3, 3, 31);
    SharedPackRegistry &reg = SharedPackRegistry::global();
    WeightPackCache pool_a, pool_b;
    const int64_t hits0 = reg.sharedHits();
    const int64_t builds0 = reg.builds();
    const PackedWeights &a = pool_a.get(0, fb, 1, 0, 4);
    EXPECT_EQ(reg.builds(), builds0 + 1);
    const PackedWeights &b = pool_b.get(0, fb, 1, 0, 4);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.sharedHits(), hits0 + 1);
    EXPECT_EQ(reg.builds(), builds0 + 1);
    // A different layout (mr_cap) is a different panel byte layout —
    // it must be a separate entry, never served from the first.
    const PackedWeights &narrow = pool_b.get(1, fb, 1, 0, 1);
    EXPECT_NE(&a, &narrow);
    EXPECT_EQ(reg.builds(), builds0 + 2);
}

TEST(WeightPack, SharedRegistryPurgeRespectsLiveReferences)
{
    FilterBank fb = randomBank(4, 2, 3, 32);
    SharedPackRegistry &reg = SharedPackRegistry::global();
    auto live = std::make_unique<WeightPackCache>();
    const PackedWeights &held = live->get(0, fb);
    const float first = held.panel(0)[0];
    // The live cache's reference keeps the entry out of the purge.
    reg.purgeUnused();
    const PackedWeights &again = live->get(0, fb);
    EXPECT_EQ(&held, &again);
    EXPECT_EQ(again.panel(0)[0], first);
    // Once the last reference drops, the entry becomes purgeable and a
    // fresh resolve rebuilds (the refcount made the eviction safe).
    live.reset();
    EXPECT_GE(reg.purgeUnused(), 1);
    WeightPackCache later;
    const PackedWeights &rebuilt = later.get(0, fb);
    EXPECT_EQ(rebuilt.panel(0)[0], first);
}

TEST(WeightPack, FingerprintTracksContent)
{
    FilterBank fb = randomBank(4, 2, 3, 33);
    FilterBank same = randomBank(4, 2, 3, 33);
    FilterBank diff = randomBank(4, 2, 3, 34);
    EXPECT_EQ(filterBankFingerprint(fb), filterBankFingerprint(same));
    EXPECT_NE(filterBankFingerprint(fb), filterBankFingerprint(diff));
    // A single-bit weight change must change the fingerprint.
    same.w(3, 1, 2, 2) = std::nextafter(same.w(3, 1, 2, 2), 2.0f);
    EXPECT_NE(filterBankFingerprint(fb), filterBankFingerprint(same));
    // So must a bias-only change.
    FilterBank biased = randomBank(4, 2, 3, 33);
    biased.bias(0) += 1.0f;
    EXPECT_NE(filterBankFingerprint(fb), filterBankFingerprint(biased));
}

TEST(WeightPack, CacheKeyIncludesDtype)
{
    // Regression: keyed on the layer index alone, the same fused layer
    // served in fp32 and then fp16 would hand the second caller the
    // first caller's bank (or, with typed slots, collide the slots).
    // Every dtype under one layer key must be an independent entry.
    FilterBank fb = randomBank(5, 3, 3, 25);
    const std::vector<float> ws(5, 0.01f);
    WeightPackCache cache;
    const PackedWeights &f32 = cache.get(7, fb);
    const PackedWeightsF16 &f16 = cache.getF16(7, fb, 1);
    const PackedWeightsI8 &i8 = cache.getI8(7, fb, 1, ws, 1);
    EXPECT_EQ(cache.misses(), 3);
    EXPECT_EQ(cache.hits(), 0);
    // Same keys again: served from cache, no repacking.
    EXPECT_EQ(&cache.get(7, fb), &f32);
    EXPECT_EQ(&cache.getF16(7, fb, 1), &f16);
    EXPECT_EQ(&cache.getI8(7, fb, 1, ws, 1), &i8);
    EXPECT_EQ(cache.hits(), 3);
    EXPECT_EQ(cache.misses(), 3);
}

TEST(WeightPack, CacheKeyIncludesScaleSetIdentity)
{
    // Regression: two int8 calibrations of the same layer (different
    // NetPrecision instances, e.g. two models sharing an executor's
    // layer index) must not alias — the packed integers depend on the
    // weight scales, so a collision silently serves wrong weights.
    FilterBank fb = randomBank(4, 2, 3, 26);
    const std::vector<float> coarse(4, 0.05f);
    const std::vector<float> fine(4, 0.005f);
    WeightPackCache cache;
    const PackedWeightsI8 &a = cache.getI8(3, fb, 1, coarse, 1);
    const PackedWeightsI8 &b = cache.getI8(3, fb, 1, fine, 2);
    EXPECT_NE(&a, &b);
    EXPECT_EQ(cache.misses(), 2);
    // The two banks really quantized differently: a 10x finer scale
    // changes the stored integers (scale is per entry, not shared).
    EXPECT_NE(a.scale(0), b.scale(0));
    // And the same scale id round-trips to the same bank.
    EXPECT_EQ(&cache.getI8(3, fb, 1, coarse, 1), &a);
    EXPECT_EQ(cache.hits(), 1);
}

/** Stale-pack guard: the tune cache can change a layer's mr_cap (or
 *  the accelerator its m_tile) between runs. A cached pack built for a
 *  different panel layout must be evicted and rebuilt — serving it
 *  would make the kernel read lanes that are not there. */
TEST(WeightPack, CacheEvictsWhenThePanelLayoutChanges)
{
    const int m = 7, n = 3, k = 3;
    FilterBank fb = randomBank(m, n, k, 31);
    WeightPackCache cache;

    const PackedWeights &full = cache.get(0, fb);
    EXPECT_EQ(full.block(0).lanes, 4);
    EXPECT_EQ(cache.evictions(), 0);

    // A tuned mr_cap of 2 narrows the ladder: same key, new layout.
    const PackedWeights &capped = cache.get(0, fb, 1, 0, 2);
    EXPECT_EQ(cache.evictions(), 1);
    ASSERT_EQ(capped.numBlocks(), 4);  // 2/2/2/1
    for (int bi = 0; bi < capped.numBlocks(); bi++)
        EXPECT_LE(capped.block(bi).lanes, 2);

    // The repacked panels still hold the exact bank values — eviction
    // replaces layout, never arithmetic.
    for (int bi = 0; bi < capped.numBlocks(); bi++) {
        const PackedBlock &b = capped.block(bi);
        const float *panel = capped.panel(bi);
        for (int f = 0; f < b.lanes; f++)
            for (int ch = 0; ch < n; ch++)
                for (int i = 0; i < k; i++)
                    for (int j = 0; j < k; j++)
                        ASSERT_EQ(
                            panel[((static_cast<int64_t>(ch) * k + i) *
                                       k +
                                   j) *
                                      b.lanes +
                                  f],
                            fb.w(b.m0 + f, ch, i, j));
    }

    // Stable layout: no further eviction, the same pack is served.
    EXPECT_EQ(&cache.get(0, fb, 1, 0, 2), &capped);
    EXPECT_EQ(cache.evictions(), 1);

    // m_tile changes (the accelerator's Tm knob) evict the same way.
    (void)cache.get(0, fb, 1, 4, 2);
    EXPECT_EQ(cache.evictions(), 2);

    // The int8 and fp16 entries guard their caps independently.
    const std::vector<float> ws(m, 0.05f);
    (void)cache.getI8(0, fb, 1, ws, 1);
    (void)cache.getI8(0, fb, 1, ws, 1, 2);
    EXPECT_EQ(cache.evictions(), 3);
    const PackedWeightsF16 &h16 = cache.getF16(0, fb, 1);
    EXPECT_EQ(h16.block(0).lanes, 4);
    (void)cache.getF16(0, fb, 1, 1);
    EXPECT_EQ(cache.evictions(), 4);
}

} // namespace
} // namespace flcnn
