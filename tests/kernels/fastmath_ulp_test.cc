/**
 * @file
 * ULP-bounded differential tests for the opt-in fast-math FMA tier.
 *
 * The fast kernels split each lane's accumulation into two tap-parity
 * partial sums evaluated with FMA and recombined at the end. Both the
 * reordering and the fused rounding move results off the canonical
 * bits, but only by rounding-error amounts; these tests pin that bound
 * in the two regimes that matter:
 *
 *   - all-positive data (no cancellation): the results must agree to
 *     a small fixed ULP count regardless of shape, and
 *   - mixed-sign data (cancellation possible): the absolute error must
 *     stay under an eps-scaled bound built from the sum of |term|
 *     magnitudes — the quantity the reassociation analysis bounds
 *     against (ULP distance alone is meaningless next to a zero
 *     crossing, which is why the network-level gate is relative).
 *
 * The default resolver must never hand out these kernels; that is
 * asserted here too.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hh"
#include "kernels/conv_kernels.hh"
#include "kernels/weight_pack.hh"
#include "tensor/compare.hh"

namespace flcnn {
namespace {

constexpr int kGrid[][2] = {{1, 1}, {3, 1}, {3, 2}, {5, 1},
                            {7, 2}, {11, 4}};

struct RowPair
{
    std::vector<float> exact;
    std::vector<float> fast;
    int count = 0;
    int m = 0;
};

/** One output row of every filter through the exact and the fast
 *  resolver, from identical inputs. */
RowPair
runBoth(int k, int stride, const Tensor &in, const FilterBank &fb)
{
    RowPair r;
    r.m = fb.numFilters();
    r.count = (in.shape().w - k) / stride + 1;
    r.exact.assign(static_cast<size_t>(r.m) * r.count, 0.0f);
    r.fast = r.exact;

    const PackedWeights pw(fb);
    const ConvBlockKernel exact = resolveConvBlockKernel(k, stride);
    const ConvBlockKernel fast = resolveConvBlockKernelFast(k, stride);
    for (int bi = 0; bi < pw.numBlocks(); bi++) {
        const int64_t at =
            static_cast<int64_t>(pw.block(bi).m0) * r.count;
        convBlockRowTensor(exact, pw, bi, r.exact.data() + at, r.count,
                           r.count, in, 0, 0);
        convBlockRowTensor(fast, pw, bi, r.fast.data() + at, r.count,
                           r.count, in, 0, 0);
    }
    return r;
}

TEST(FastMathUlp, PositiveDataStaysWithinAFewUlp)
{
    if (!convFmaEnabled())
        GTEST_SKIP() << "FMA kernels unavailable on this host";

    Rng rng(61);
    for (const auto &ks : kGrid) {
        const int k = ks[0], stride = ks[1], n = 3, count = 24;
        Tensor in(n, k, (count - 1) * stride + k);
        in.fillRandom(rng, 0.5f, 1.5f);
        FilterBank fb(7, n, k);  // 4/2/1-lane blocks all exercised
        for (int m = 0; m < 7; m++) {
            fb.bias(m) = rng.uniformF(0.5f, 1.5f);
            for (int ch = 0; ch < n; ch++)
                for (int i = 0; i < k; i++)
                    for (int j = 0; j < k; j++)
                        fb.w(m, ch, i, j) = rng.uniformF(0.5f, 1.5f);
        }

        const RowPair r = runBoth(k, stride, in, fb);
        int64_t worst = 0;
        for (size_t e = 0; e < r.exact.size(); e++)
            worst = std::max(worst,
                             ulpDistance(r.exact[e], r.fast[e]));
        // All terms positive, so no cancellation: splitting the sum in
        // two and fusing the rounding perturbs each partial by at most
        // half an ulp per term, and the recombined result lands within
        // a handful of ulps even for the 3*11*11-tap case. 16 gives
        // slack without admitting a wrong kernel (which would be off
        // by orders of magnitude).
        EXPECT_LE(worst, 16) << "k=" << k << " stride=" << stride;
        EXPECT_GE(worst, 0);
    }
}

TEST(FastMathUlp, MixedSignErrorIsBoundedByTermMagnitudes)
{
    if (!convFmaEnabled())
        GTEST_SKIP() << "FMA kernels unavailable on this host";

    Rng rng(67);
    const float eps = std::numeric_limits<float>::epsilon();
    for (const auto &ks : kGrid) {
        const int k = ks[0], stride = ks[1], n = 3, count = 24;
        Tensor in(n, k, (count - 1) * stride + k);
        in.fillRandom(rng, -1.0f, 1.0f);
        FilterBank fb(7, n, k);
        fb.fillRandom(rng);

        const RowPair r = runBoth(k, stride, in, fb);
        for (int m = 0; m < r.m; m++) {
            for (int t = 0; t < r.count; t++) {
                // Σ|w * x| + |bias|: the magnitude the reassociation
                // error analysis is relative to.
                double mag = std::fabs(fb.bias(m));
                for (int ch = 0; ch < n; ch++)
                    for (int i = 0; i < k; i++)
                        for (int j = 0; j < k; j++)
                            mag += std::fabs(
                                static_cast<double>(
                                    fb.w(m, ch, i, j)) *
                                in(ch, i, t * stride + j));
                const size_t at =
                    static_cast<size_t>(m) * r.count + t;
                const double diff = std::fabs(
                    static_cast<double>(r.exact[at]) - r.fast[at]);
                EXPECT_LE(diff, 16.0 * eps * mag)
                    << "k=" << k << " stride=" << stride << " m=" << m
                    << " t=" << t;
            }
        }
    }
}

TEST(FastMathUlp, DefaultResolverNeverReturnsTheFmaKernels)
{
    if (!convFmaEnabled())
        GTEST_SKIP() << "FMA kernels unavailable on this host";

    // Where a fast variant exists it must differ from the default
    // pointer — otherwise the "opt-in" label would be meaningless and
    // the bit-exact default chain would silently contract.
    for (const auto &ks : kGrid) {
        const ConvBlockKernel dflt =
            resolveConvBlockKernel(ks[0], ks[1]);
        const ConvBlockKernel fast =
            resolveConvBlockKernelFast(ks[0], ks[1]);
        for (int mr : {1, 2, 4}) {
            ASSERT_NE(fast.fn[mr], nullptr);
            EXPECT_NE(dflt.fn[mr], fast.fn[mr])
                << "k=" << ks[0] << " s=" << ks[1] << " mr=" << mr;
        }
    }
}

} // namespace
} // namespace flcnn
