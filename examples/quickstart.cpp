/**
 * @file
 * Quickstart: define a small CNN, fuse its layers, and verify that the
 * fused evaluation is bit-identical to the conventional layer-by-layer
 * one while transferring a fraction of the data.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/units.hh"
#include "fusion/fused_executor.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

using namespace flcnn;

int
main()
{
    // 1. Describe a network: two padded 3x3 convolutions and a 2x2
    //    max-pool over a 3x64x64 input.
    Network net("quickstart", Shape{3, 64, 64});
    net.addConvBlock("conv1", 16, /*k=*/3, /*s=*/1, /*pad=*/1);
    net.addConvBlock("conv2", 16, 3, 1, 1);
    net.addMaxPool("pool1", 2, 2);
    std::printf("%s\n", net.str().c_str());

    // 2. Give it (synthetic, seeded) weights and an input image.
    Rng rng(1234);
    NetworkWeights weights(net, rng);
    Tensor image(net.inputShape());
    image.fillRandom(rng);

    // 3. Plan the fusion of all layers into one pyramid. The plan
    //    reports the geometry: per-layer tiles, overlaps, buffers.
    TilePlan plan(net, 0, net.numLayers() - 1);
    std::printf("%s\n", plan.str().c_str());

    // 4. Run fused and compare against the layer-by-layer reference.
    FusedExecutor fused(net, weights, std::move(plan));
    FusedRunStats stats;
    Tensor out = fused.run(image, &stats);
    Tensor ref = runNetwork(net, weights, image);

    CompareResult cmp = compareTensors(ref, out);
    std::printf("fused vs reference: %s\n\n", cmp.str().c_str());

    // 5. The payoff: DRAM traffic with and without fusion.
    int64_t layer_by_layer = 0;
    for (int i = 0; i < net.numLayers(); i++) {
        if (net.layer(i).windowed()) {
            layer_by_layer += net.inShape(i).bytes();
            layer_by_layer += net.outShape(i).bytes();
        }
    }
    std::printf("layer-by-layer transfer : %s\n",
                formatBytes(layer_by_layer).c_str());
    std::printf("fused transfer          : %s (in %s + out %s)\n",
                formatBytes(stats.loadedBytes + stats.storedBytes).c_str(),
                formatBytes(stats.loadedBytes).c_str(),
                formatBytes(stats.storedBytes).c_str());
    std::printf("on-chip reuse buffers   : %s\n",
                formatBytes(stats.reuseBytes).c_str());
    std::printf("arithmetic              : %s mult-adds (same as "
                "unfused)\n",
                formatScaled(static_cast<double>(stats.ops.multAdds()))
                    .c_str());
    return cmp.match ? 0 : 1;
}
