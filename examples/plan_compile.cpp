/**
 * @file
 * Compile fusion plans for the whole network zoo and report per-plan
 * compile time, resolved solvers, and the no-silent-fallback counters.
 *
 * This is the CI smoke for the plan compile/execute contract: every
 * known-supported zoo network must compile onto every fused engine
 * with zero rejects and zero silent fallbacks (the `plan:` metrics
 * scope proves both). It doubles as the compile-time probe run_bench.py
 * records.
 *
 * Usage:
 *   plan_compile [--json] [--check] [--tip N]
 *
 *   --json    emit a machine-readable report (schema flcnn-plan-v1)
 *   --check   exit non-zero unless every compile succeeded and the
 *             silent_fallbacks counter is zero
 *   --tip N   pyramid tip for the Fused/Recompute engines (default 1)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "fusion/fusion_plan.hh"
#include "nn/zoo.hh"
#include "obs/metrics.hh"

using namespace flcnn;

namespace {

struct PlanReport
{
    std::string net;
    std::string engine;
    CompileStatus status = CompileStatus::Ok;
    double compileSeconds = 0.0;
    std::vector<std::string> solvers;
    std::string diagnostic;
};

/** The fusable prefix of @p net: every zoo network opens with a run of
 *  Pad/Conv/Pool/ReLU/LRN stages; plans cover exactly that range. */
void
fusablePrefix(const Network &net, int *first, int *last)
{
    *first = net.stages().front().first;
    *last = net.stages().back().last;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    bool check = false;
    int tip = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strcmp(argv[i], "--tip") == 0) {
            tip = parseIntArgI("--tip", argValue(argc, argv, &i), 1,
                               1024);
        } else {
            fatal("unknown argument '%s' (want --json | --check | "
                  "--tip N)",
                  argv[i]);
        }
    }

    struct Entry
    {
        const char *label;
        Network net;
    };
    std::vector<Entry> zoo;
    zoo.push_back({"tiny", tinyNet()});
    zoo.push_back({"alexnet", alexnet()});
    zoo.push_back({"alexnet-fused-prefix", alexnetFusedPrefix()});
    zoo.push_back({"vggE-prefix5", vggEPrefix(5)});
    zoo.push_back({"googlenet-stem", googlenetStem()});

    const PlanEngine engines[] = {PlanEngine::Fused,
                                  PlanEngine::LineBuffer,
                                  PlanEngine::Recompute,
                                  PlanEngine::Reference};

    MetricsRegistry reg;
    std::vector<PlanReport> reports;
    std::vector<NetworkWeights> weights;  // keep alive for the plans
    weights.reserve(zoo.size());

    for (Entry &e : zoo) {
        Rng rng(42);
        weights.emplace_back(e.net, rng);
        int first, last;
        fusablePrefix(e.net, &first, &last);
        for (PlanEngine eng : engines) {
            FusionPlan plan(e.net, weights.back());
            plan.addRange(first, last);
            PlanCompileOptions opt;
            opt.engine = eng;
            opt.tip = tip;
            opt.metrics = &reg;
            PlanReport r;
            r.net = e.label;
            r.engine = planEngineName(eng);
            r.status = plan.compile(opt);
            r.compileSeconds = plan.compileSeconds();
            r.solvers = plan.solvers();
            r.diagnostic = plan.diagnostic();
            reports.push_back(std::move(r));
        }
    }

    const int64_t rejected = reg.counter("plan", "compile_rejected");
    const int64_t fallbacks = reg.counter("plan", "silent_fallbacks");

    if (json) {
        std::printf("{\n  \"schema\": \"flcnn-plan-v1\",\n");
        std::printf("  \"tip\": %d,\n", tip);
        std::printf("  \"plans\": [\n");
        for (size_t i = 0; i < reports.size(); i++) {
            const PlanReport &r = reports[i];
            std::printf("    {\"net\": \"%s\", \"engine\": \"%s\", "
                        "\"status\": \"%s\", \"compile_ms\": %.3f, "
                        "\"solvers\": [",
                        r.net.c_str(), r.engine.c_str(),
                        compileStatusName(r.status),
                        r.compileSeconds * 1e3);
            for (size_t s = 0; s < r.solvers.size(); s++)
                std::printf("%s\"%s\"", s ? ", " : "",
                            r.solvers[s].c_str());
            std::printf("]}%s\n",
                        i + 1 < reports.size() ? "," : "");
        }
        std::printf("  ],\n");
        std::printf("  \"compiles\": %lld,\n",
                    static_cast<long long>(reg.counter("plan",
                                                       "compiles")));
        std::printf("  \"compile_rejected\": %lld,\n",
                    static_cast<long long>(rejected));
        std::printf("  \"silent_fallbacks\": %lld\n",
                    static_cast<long long>(fallbacks));
        std::printf("}\n");
    } else {
        std::printf("%-22s %-11s %-22s %10s  solvers\n", "network",
                    "engine", "status", "compile ms");
        for (const PlanReport &r : reports) {
            std::printf("%-22s %-11s %-22s %10.3f  %zu\n",
                        r.net.c_str(), r.engine.c_str(),
                        compileStatusName(r.status),
                        r.compileSeconds * 1e3, r.solvers.size());
            if (r.status != CompileStatus::Ok)
                std::printf("    %s\n", r.diagnostic.c_str());
        }
        std::printf("\nplan compiles: %lld, rejected: %lld, silent "
                    "fallbacks: %lld\n",
                    static_cast<long long>(reg.counter("plan",
                                                       "compiles")),
                    static_cast<long long>(rejected),
                    static_cast<long long>(fallbacks));
    }

    if (check) {
        if (fallbacks != 0)
            fatal("silent_fallbacks = %lld (contract: always 0)",
                  static_cast<long long>(fallbacks));
        if (rejected != 0)
            fatal("%lld plan(s) rejected for known-supported zoo "
                  "networks",
                  static_cast<long long>(rejected));
        for (const PlanReport &r : reports) {
            if (r.status != CompileStatus::Ok)
                fatal("%s/%s: %s", r.net.c_str(), r.engine.c_str(),
                      r.diagnostic.c_str());
        }
        std::printf("plan-compile check: OK\n");
    }
    return 0;
}
