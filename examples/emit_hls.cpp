/**
 * @file
 * Emit the specialized HLS accelerator source for a fused design — the
 * paper's Section IV artifact. The generated file is host-compilable
 * (HLS pragmas are no-ops for g++/clang) and, with
 * -DFLCNN_HLS_TESTBENCH, gains a file-driven main() so the accelerator
 * can be validated against the library.
 *
 * Usage:
 *   emit_hls [alexnet | vgg <num_convs> | googlenet] [out.cc]
 */

#include <cstdio>
#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "hls/emitter.hh"
#include "model/balance.hh"
#include "nn/zoo.hh"

using namespace flcnn;

int
main(int argc, char **argv)
{
    std::string which = "alexnet";
    int convs = 5;
    std::string out_path;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "alexnet") == 0) {
            which = "alexnet";
        } else if (std::strcmp(argv[a], "googlenet") == 0) {
            which = "googlenet";
        } else if (std::strcmp(argv[a], "vgg") == 0) {
            which = "vgg";
            if (a + 1 < argc && argv[a + 1][0] != '-')
                convs = parseIntArgI("vgg conv count", argv[++a], 1, 16);
        } else if (out_path.empty()) {
            out_path = argv[a];
        } else {
            fatal("unknown argument '%s'", argv[a]);
        }
    }

    Network net = which == "alexnet" ? alexnetFusedPrefix()
                  : which == "vgg"   ? vggEPrefix(convs)
                                     : googlenetStem();
    const int last = net.stages().back().last;
    int budget = which == "alexnet" ? 2401 : 2987;
    FusedPipelineConfig cfg = balanceFusedPipeline(net, 0, last, budget);

    HlsEmitOptions opt;
    opt.topName = which + "_fused_top";
    std::string src = emitFusedHls(net, 0, last, cfg.unrolls, opt);

    if (out_path.empty())
        out_path = which + "_fused_accel.cc";
    std::ofstream(out_path) << src;
    std::printf("wrote %s (%zu lines) for %s, fused layers 0..%d\n",
                out_path.c_str(),
                static_cast<size_t>(
                    std::count(src.begin(), src.end(), '\n')),
                net.name().c_str(), last);
    std::printf("unrolls:");
    for (const auto &u : cfg.unrolls)
        std::printf(" %s(Tm=%d,Tn=%d)", net.layer(u.layerIdx).name.c_str(),
                    u.tm, u.tn);
    std::printf("\n\nvalidate it on your host:\n");
    std::printf("  c++ -O2 -std=c++17 -DFLCNN_HLS_TESTBENCH %s -o accel\n",
                out_path.c_str());
    std::printf("  ./accel input.bin weights.bin output.bin\n");
    std::printf("(serialize input/weights with packWeightsForHls; the "
                "hls tests do this automatically)\n");
    return 0;
}
