/**
 * @file
 * Design-space explorer (the paper's Section V tool): enumerate every
 * way to partition a network's stages into fused pyramids and print
 * the storage/transfer trade-off with its Pareto front.
 *
 * Usage:
 *   explore_vgg [alexnet | vgg <num_convs> | vgge | googlenet]
 *               [--all-points]
 *               [--precision fp32|fp16|int8]
 *               [--space chain|looptree] [--tile-heights H1,H2,...]
 *               [--budget N] [--exact-only] [--pareto-json FILE]
 *
 * Defaults to the paper's VGGNet-E five-conv prefix. --precision
 * re-prices every partition at that element size (fp16 halves, int8
 * quarters all storage/transfer bytes), re-deriving the Pareto front
 * for a quantized deployment.
 *
 * --space switches to the schedule-space sweep engine (src/dse):
 * "chain" re-enumerates the paper's partition space bit-identically to
 * the classic tool but also prices the latency/energy/buffer surface;
 * "looptree" explores the enlarged space (multi-row tiles from
 * --tile-heights, per-boundary retain-vs-recompute, independent-tile
 * and uniform-stride dataflows). --pareto-json writes both surfaces as
 * JSON (schema flcnn-pareto-v1) and implies --space chain when no
 * space was chosen.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "dse/sweep.hh"
#include "model/explorer.hh"
#include "model/transfer.hh"
#include "nn/zoo.hh"

using namespace flcnn;

namespace {

std::vector<int>
parseTileHeights(const char *arg)
{
    std::vector<int> tiles;
    std::string cur;
    for (const char *p = arg;; p++) {
        if (*p == ',' || *p == '\0') {
            if (cur.empty())
                fatal("--tile-heights: empty entry in '%s'", arg);
            tiles.push_back(parseIntArgI("tile height", cur.c_str(), 1,
                                         dse::kMaxTileH));
            cur.clear();
            if (*p == '\0')
                break;
        } else {
            cur += *p;
        }
    }
    return tiles;
}

void
printSweep(const Network &net, const dse::SweepOptions &opt,
           const dse::SweepResult &res)
{
    std::printf("%s sweep: %lld points in %.3f s (%.0f points/s), "
                "frontier %zu, chain front %zu\n\n",
                dse::spaceName(res.space),
                static_cast<long long>(res.pointsVisited), res.seconds,
                res.seconds > 0.0
                    ? static_cast<double>(res.pointsVisited) / res.seconds
                    : 0.0,
                res.front.size(), res.chainFront.size());

    Table t({"schedule", "buffer KB", "transfer MB", "extra ops",
             "latency Mcyc", "energy mJ", "exact"});
    for (const dse::SweepPoint &p : res.front) {
        t.addRow({dse::scheduleStr(net, p.schedule),
                  fmtF(toKiB(p.cost.bufferBytes()), 1),
                  fmtF(toMiB(p.cost.transferBytes), 2),
                  formatScaled(static_cast<double>(p.cost.extraOps)),
                  fmtF(static_cast<double>(p.cost.latencyCycles) / 1e6,
                       2),
                  fmtF(static_cast<double>(p.cost.energyPj) / 1e9, 2),
                  p.cost.exact() ? "" : "approx"});
    }
    t.print();
    (void)opt;
}

} // namespace

int
main(int argc, char **argv)
{
    bool all_points = false;
    std::string which = "vgg";
    int convs = 5;
    Precision dtype = Precision::Fp32;
    bool use_sweep = false;
    dse::SweepOptions sopt;
    std::string json_path;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "--all-points") == 0) {
            all_points = true;
        } else if (std::strcmp(argv[a], "--precision") == 0) {
            dtype = precisionFromName(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "--space") == 0) {
            const char *v = argValue(argc, argv, &a);
            if (std::strcmp(v, "chain") == 0)
                sopt.space = dse::Space::Chain;
            else if (std::strcmp(v, "looptree") == 0)
                sopt.space = dse::Space::LoopTree;
            else
                fatal("--space must be 'chain' or 'looptree', got '%s'",
                      v);
            use_sweep = true;
        } else if (std::strcmp(argv[a], "--tile-heights") == 0) {
            sopt.tileHeights = parseTileHeights(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "--budget") == 0) {
            sopt.pointBudget = parseIntArg(
                "point budget", argValue(argc, argv, &a), 1, INT64_MAX);
        } else if (std::strcmp(argv[a], "--exact-only") == 0) {
            // Drop the approximate independent-tile dataflow: every
            // surfaced point then executes/prices without zero-padded
            // halos.
            sopt.independentTiles = false;
        } else if (std::strcmp(argv[a], "--pareto-json") == 0) {
            json_path = argValue(argc, argv, &a);
            use_sweep = true;
        } else if (std::strcmp(argv[a], "alexnet") == 0) {
            which = "alexnet";
        } else if (std::strcmp(argv[a], "googlenet") == 0) {
            which = "googlenet";
        } else if (std::strcmp(argv[a], "vgge") == 0) {
            which = "vgge";  // all 21 fusable stages: the 2^20 space
        } else if (std::strcmp(argv[a], "vgg") == 0) {
            which = "vgg";
            if (a + 1 < argc && argv[a + 1][0] != '-')
                convs = parseIntArgI("vgg conv count", argv[++a], 1, 16);
        } else {
            fatal("unknown argument '%s'", argv[a]);
        }
    }

    Network net = which == "alexnet" ? alexnet()
                  : which == "googlenet" ? googlenetStem()
                  : which == "vgge" ? vggE()
                                    : vggEPrefix(convs);
    std::printf("exploring %s (%s): %zu fusable stages, %lld "
                "partitions\n\n",
                net.name().c_str(), precisionName(dtype),
                net.stages().size(),
                static_cast<long long>(countPartitions(
                    static_cast<int>(net.stages().size()))));

    if (use_sweep) {
        sopt.cost.withRecompute = true;
        sopt.cost.dtype = dtype;
        dse::SweepResult res = runSweep(net, sopt);
        printSweep(net, sopt, res);
        if (!json_path.empty()) {
            std::FILE *f = std::fopen(json_path.c_str(), "w");
            if (!f)
                fatal("cannot write '%s'", json_path.c_str());
            dse::writeParetoJson(f, net, sopt, res);
            std::fclose(f);
            std::printf("\nPareto surfaces written to %s\n",
                        json_path.c_str());
        }
        return 0;
    }

    ExploreOptions opt;
    opt.withRecompute = true;
    opt.dtype = dtype;
    auto res = exploreFusionSpace(net, opt);

    Table t({"partition", "storage KB", "transfer MB",
             "recompute-alt extra ops", "pareto"});
    for (const auto &p : res.points) {
        bool on_front = false;
        for (const auto &f : res.front) {
            if (f.partition == p.partition) {
                on_front = true;
                break;
            }
        }
        if (!all_points && !on_front)
            continue;
        t.addRow({partitionStr(p.partition),
                  fmtF(toKiB(p.storageBytes), 1),
                  fmtF(toMiB(p.transferBytes), 2),
                  formatScaled(static_cast<double>(p.extraOps)),
                  on_front ? "*" : ""});
    }
    t.print();

    const int64_t lbl = layerByLayerTransferBytes(net) / 4 *
                        precisionElemBytes(dtype);
    std::printf("\nlayer-by-layer: %s; best fusion: %s "
                "(%.1fx less DRAM traffic)\n",
                formatBytes(lbl).c_str(),
                formatBytes(res.minTransfer().transferBytes).c_str(),
                static_cast<double>(lbl) /
                    static_cast<double>(res.minTransfer().transferBytes));
    if (!all_points)
        std::printf("(showing Pareto-optimal rows; --all-points for "
                    "the full scatter)\n");
    return 0;
}
