/**
 * @file
 * Design-space explorer (the paper's Section V tool): enumerate every
 * way to partition a network's stages into fused pyramids and print
 * the storage/transfer trade-off with its Pareto front.
 *
 * Usage:
 *   explore_vgg [alexnet | vgg <num_convs> | googlenet] [--all-points]
 *               [--precision fp32|fp16|int8]
 *
 * Defaults to the paper's VGGNet-E five-conv prefix. --precision
 * re-prices every partition at that element size (fp16 halves, int8
 * quarters all storage/transfer bytes), re-deriving the Pareto front
 * for a quantized deployment.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "model/explorer.hh"
#include "model/transfer.hh"
#include "nn/zoo.hh"

using namespace flcnn;

int
main(int argc, char **argv)
{
    bool all_points = false;
    std::string which = "vgg";
    int convs = 5;
    Precision dtype = Precision::Fp32;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "--all-points") == 0) {
            all_points = true;
        } else if (std::strcmp(argv[a], "--precision") == 0) {
            dtype = precisionFromName(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "alexnet") == 0) {
            which = "alexnet";
        } else if (std::strcmp(argv[a], "googlenet") == 0) {
            which = "googlenet";
        } else if (std::strcmp(argv[a], "vgg") == 0) {
            which = "vgg";
            if (a + 1 < argc && argv[a + 1][0] != '-')
                convs = parseIntArgI("vgg conv count", argv[++a], 1, 16);
        } else {
            fatal("unknown argument '%s'", argv[a]);
        }
    }

    Network net = which == "alexnet" ? alexnet()
                  : which == "googlenet" ? googlenetStem()
                                         : vggEPrefix(convs);
    std::printf("exploring %s (%s): %zu fusable stages, %lld "
                "partitions\n\n",
                net.name().c_str(), precisionName(dtype),
                net.stages().size(),
                static_cast<long long>(countPartitions(
                    static_cast<int>(net.stages().size()))));

    ExploreOptions opt;
    opt.withRecompute = true;
    opt.dtype = dtype;
    auto res = exploreFusionSpace(net, opt);

    Table t({"partition", "storage KB", "transfer MB",
             "recompute-alt extra ops", "pareto"});
    for (const auto &p : res.points) {
        bool on_front = false;
        for (const auto &f : res.front) {
            if (f.partition == p.partition) {
                on_front = true;
                break;
            }
        }
        if (!all_points && !on_front)
            continue;
        t.addRow({partitionStr(p.partition),
                  fmtF(toKiB(p.storageBytes), 1),
                  fmtF(toMiB(p.transferBytes), 2),
                  formatScaled(static_cast<double>(p.extraOps)),
                  on_front ? "*" : ""});
    }
    t.print();

    const int64_t lbl = layerByLayerTransferBytes(net) / 4 *
                        precisionElemBytes(dtype);
    std::printf("\nlayer-by-layer: %s; best fusion: %s "
                "(%.1fx less DRAM traffic)\n",
                formatBytes(lbl).c_str(),
                formatBytes(res.minTransfer().transferBytes).c_str(),
                static_cast<double>(lbl) /
                    static_cast<double>(res.minTransfer().transferBytes));
    if (!all_points)
        std::printf("(showing Pareto-optimal rows; --all-points for "
                    "the full scatter)\n");
    return 0;
}
