/**
 * @file
 * Partition advisor: the designer workflow of Section V-B. Given an
 * on-chip storage budget, recommend the fusion partition with the least
 * DRAM traffic that fits (how the paper's point B would be chosen).
 *
 * Usage:
 *   partition_advisor <storage_budget_KB> [alexnet | vgg <num_convs>]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "model/explorer.hh"
#include "model/transfer.hh"
#include "nn/zoo.hh"

using namespace flcnn;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("usage: partition_advisor <storage_budget_KB> "
                    "[alexnet | vgg <num_convs>]\n");
        return 1;
    }
    double budget_kb =
        parseFloatArg("storage budget (KB)", argv[1], 0.0, 1e12);
    std::string which = "vgg";
    int convs = 5;
    for (int a = 2; a < argc; a++) {
        if (std::strcmp(argv[a], "alexnet") == 0) {
            which = "alexnet";
        } else if (std::strcmp(argv[a], "vgg") == 0) {
            which = "vgg";
            if (a + 1 < argc)
                convs = parseIntArgI("vgg conv count", argv[++a], 1, 16);
        } else {
            fatal("unknown argument '%s'", argv[a]);
        }
    }

    Network net =
        which == "alexnet" ? alexnet() : vggEPrefix(convs);
    auto res = exploreFusionSpace(net);

    int64_t budget =
        static_cast<int64_t>(budget_kb * 1024.0);
    const DesignPoint *pick = res.bestUnderStorage(budget);
    if (!pick) {
        std::printf("no design fits under %.0f KB (the cheapest "
                    "non-trivial fusion needs %s)\n",
                    budget_kb,
                    formatBytes(res.front.front().storageBytes).c_str());
        return 1;
    }

    std::printf("network: %s; storage budget: %.0f KB\n\n",
                net.name().c_str(), budget_kb);
    std::printf("recommended partition: %s\n",
                partitionStr(pick->partition).c_str());
    const auto &stages = net.stages();
    for (const StageGroup &g : pick->partition) {
        std::printf("  pyramid over stages %d..%d:", g.firstStage,
                    g.lastStage);
        for (int s = g.firstStage; s <= g.lastStage; s++) {
            std::printf(" %s",
                        net.layer(stages[static_cast<size_t>(s)].windowed)
                            .name.c_str());
        }
        std::printf("\n");
    }

    int64_t lbl = layerByLayerTransferBytes(net);
    std::printf("\nstorage used : %s\n",
                formatBytes(pick->storageBytes).c_str());
    std::printf("DRAM traffic : %s per image (layer-by-layer: %s, "
                "%.1fx reduction)\n",
                formatBytes(pick->transferBytes).c_str(),
                formatBytes(lbl).c_str(),
                static_cast<double>(lbl) /
                    static_cast<double>(pick->transferBytes));

    std::printf("\nfull Pareto frontier for reference:\n");
    Table t({"partition", "storage KB", "transfer MB"});
    for (const auto &p : res.front) {
        t.addRow({partitionStr(p.partition),
                  fmtF(toKiB(p.storageBytes), 1),
                  fmtF(toMiB(p.transferBytes), 2)});
    }
    t.print();
    return 0;
}
