/**
 * @file
 * End-to-end fused inference: run a synthetic image through the
 * fused-layer accelerator model and the baseline accelerator model,
 * verify bit-identical outputs, and report what each design costs.
 *
 * Usage:
 *   fused_inference [alexnet | vgg <num_convs>] [--fps N] [--threads N]
 *                   [--precision fp32|fp16|int8] [--tune] [--fast-math]
 *                   [--metrics-json FILE] [--trace-json FILE]
 *
 * With --precision fp16 or int8, the host-side executors additionally
 * run the fused range in that mode: the reference and every fused
 * executor must agree bit-exactly within the mode, and the deviation
 * from the fp32 reference plus the per-dtype weight/activation
 * footprint are reported.
 *
 * --tune autotunes every conv layer of the range first (winners
 * persist to the per-machine tune cache; a warm cache reports
 * "0 newly tuned") and prints the chosen solver + config per layer.
 * --fast-math additionally runs the fp32 fused executors through the
 * opt-in FMA tier and checks them against the always-exact reference
 * under the tier's ULP-bounded contract, reporting the measured
 * worst-case ULP distance.
 *
 * Defaults to the paper's headline configuration (VGG-E, 5 convs) and
 * FLCNN_THREADS (or all hardware threads) for the host-side executors.
 * --metrics-json writes the per-layer/per-stage breakdown of both runs
 * (schema flcnn-metrics-v1); --trace-json writes a Chrome trace of the
 * fused run for chrome://tracing / ui.perfetto.dev.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "accel/baseline_accel.hh"
#include "common/argparse.hh"
#include "sim/throughput.hh"
#include "sim/trace.hh"
#include "accel/fused_accel.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "fusion/fused_executor.hh"
#include "fusion/line_buffer_executor.hh"
#include "fusion/recompute_executor.hh"
#include "kernels/conv_kernels.hh"
#include "nn/autotune_net.hh"
#include "nn/precision.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tune/autotune.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/timeline.hh"
#include "tensor/compare.hh"

using namespace flcnn;

int
main(int argc, char **argv)
{
    std::string which = "vgg";
    int convs = 5;
    double fps = 50.0;
    Precision precision = Precision::Fp32;
    bool do_tune = false, fast_math = false;
    std::string metrics_path, trace_path;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "alexnet") == 0) {
            which = "alexnet";
        } else if (std::strcmp(argv[a], "vgg") == 0) {
            which = "vgg";
            if (a + 1 < argc && argv[a + 1][0] != '-')
                convs = parseIntArgI("vgg conv count", argv[++a], 1, 16);
        } else if (std::strcmp(argv[a], "--precision") == 0) {
            precision = precisionFromName(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "--fps") == 0) {
            fps = parseFloatArg("--fps", argValue(argc, argv, &a), 1e-6,
                                1e9);
        } else if (std::strcmp(argv[a], "--threads") == 0) {
            ThreadPool::setGlobalThreads(parseIntArgI(
                "--threads", argValue(argc, argv, &a), 1, 1 << 20));
        } else if (std::strcmp(argv[a], "--metrics-json") == 0) {
            metrics_path = argValue(argc, argv, &a);
        } else if (std::strcmp(argv[a], "--trace-json") == 0) {
            trace_path = argValue(argc, argv, &a);
        } else if (std::strcmp(argv[a], "--tune") == 0) {
            do_tune = true;
        } else if (std::strcmp(argv[a], "--fast-math") == 0) {
            fast_math = true;
        } else {
            fatal("unknown argument '%s'", argv[a]);
        }
    }
    const bool want_obs = !metrics_path.empty() || !trace_path.empty();

    Network net =
        which == "alexnet" ? alexnetFusedPrefix() : vggEPrefix(convs);
    const int last = net.stages().back().last;
    std::printf("network: %s (fusing layers 0..%d, %d host threads)\n",
                net.name().c_str(), last,
                ThreadPool::global().numThreads());

    Rng rng(7);
    NetworkWeights weights(net, rng);
    Tensor image(net.inputShape());
    image.fillRandom(rng);

    if (do_tune) {
        const bool fm = fast_math && precision == Precision::Fp32;
        AutotuneSummary sum = autotuneQueries(
            convQueriesForRange(net, 0, last, precision, fm));
        std::printf("autotune: %d newly tuned, %d cached\n", sum.tuned,
                    sum.cached);
        for (int li = 0; li <= last; li++) {
            if (net.layer(li).kind != LayerKind::Conv)
                continue;
            const ConvQuery q = convLayerQuery(net, li, precision, fm);
            const ConvPlan plan = planConv(q);
            std::printf("  layer %2d %-14s -> %-12s mr=%d seg=%d "
                        "grain=%d%s\n",
                        li, net.layer(li).name.c_str(),
                        plan.solver.c_str(), plan.cfg.mrCap,
                        plan.cfg.segW, plan.cfg.grain,
                        plan.tuned ? "" : " (default)");
        }
    }

    // Size both designs like the paper's Virtex-7 budgets.
    int dsp_budget = which == "alexnet" ? 2240 : 2880;
    BaselineConfig bcfg = optimizeBaseline(net, dsp_budget);
    bcfg.tr = bcfg.tc = 16;
    BaselineAccelerator baseline(net, weights, bcfg);
    MetricsRegistry breg;
    if (want_obs)
        baseline.setMetrics(&breg);
    AccelStats bs;
    Tensor bout = baseline.run(image, &bs);

    FusedPipelineConfig fcfg =
        balanceFusedPipeline(net, 0, last, dsp_budget + 110);
    FusedAccelerator fused(net, weights, 0, last, fcfg);
    MetricsRegistry freg;
    TraceRecorder rec(/*keep_log=*/!trace_path.empty());
    std::unique_ptr<ThreadPoolTraceScope> pool;
    if (want_obs)
        fused.setMetrics(&freg);
    if (!trace_path.empty()) {
        fused.setTraceSink(rec.sink());
        pool.reset(new ThreadPoolTraceScope());
    }
    AccelStats fs;
    Tensor fout = fused.run(image, &fs);

    CompareResult cmp = compareTensors(bout, fout);
    std::printf("outputs: %s\n\n", cmp.str().c_str());

    Table t({"metric", "fused", "baseline"});
    t.addRow({"DRAM read", formatBytes(fs.dramReadBytes),
              formatBytes(bs.dramReadBytes)});
    t.addRow({"DRAM written", formatBytes(fs.dramWriteBytes),
              formatBytes(bs.dramWriteBytes)});
    t.addRow({"compute cycles", formatCount(fs.computeCycles),
              formatCount(bs.computeCycles)});
    t.addRow({"makespan cycles", formatCount(fs.makespanCycles),
              formatCount(bs.makespanCycles)});
    t.addRow({"DSP48E1", fmtI(fs.dsp), fmtI(bs.dsp)});
    t.addRow({"BRAM18K", fmtI(fs.bram), fmtI(bs.bram)});
    t.addRow({"on-chip buffers", formatBytes(fs.bufferBytes),
              formatBytes(bs.bufferBytes)});
    t.print();

    // Footnote 4 of the paper: transfer volume -> bandwidth at a
    // target frame rate.
    std::printf("\nDRAM bandwidth needed at %.0f images/s: fused "
                "%.2f GB/s, baseline %.2f GB/s\n",
                fps,
                DramModel::requiredBandwidth(fs.totalDramBytes(), fps) /
                    1e9,
                DramModel::requiredBandwidth(bs.totalDramBytes(), fps) /
                    1e9);

    // Steady-state throughput of the fused pipeline at a Virtex-7
    // class 100 MHz clock.
    Throughput tp = analyzeThroughput(fused.schedule(), 100e6,
                                      fs.totalDramBytes());
    std::printf("fused pipeline at 100 MHz: %.1f images/s steady "
                "state (%.1f ms latency),\nsustained DRAM %.2f GB/s\n",
                tp.imagesPerSecond, tp.latencySeconds * 1e3,
                tp.dramBytesPerSecond / 1e9);

    const std::string label =
        "fused_inference " + which +
        (which == "vgg" ? " " + std::to_string(convs) : "");
    if (!metrics_path.empty()) {
        MetricsReport rep(label);
        rep.addRun("baseline", bs, breg);
        rep.addRun("fused", fs, freg);
        if (rep.writeFile(metrics_path))
            std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
        if (writeFusedTraceFile(trace_path, label, fused.schedule(),
                                fused.stageNames(), &freg, &rec,
                                pool.get(), accelStatsArgs(fs)))
            std::printf("wrote trace to %s (open in ui.perfetto.dev)\n",
                        trace_path.c_str());
    }

    // Quantized host-side run: calibrate, evaluate the fused range in
    // the requested mode on the reference and every fused executor
    // (which must agree bit-exactly within the mode), and report the
    // deviation from fp32 plus the per-dtype footprint.
    bool prec_ok = true;
    if (precision != Precision::Fp32) {
        std::printf("\n== %s host executors ==\n",
                    precisionName(precision));
        NetPrecision prec =
            NetPrecision::calibrate(net, weights, precision);
        Tensor ref32 = runRange(net, weights, image, 0, last);
        Tensor refp =
            runRange(net, weights, image, 0, last, &prec);

        FusedExecutor fexec(net, weights, TilePlan(net, 0, last, 2, 2));
        fexec.setPrecision(&prec);
        LineBufferExecutor lexec(net, weights, 0, last);
        lexec.setPrecision(&prec);
        RecomputeExecutor rexec(net, weights,
                                TilePlan(net, 0, last, 2, 2));
        rexec.setPrecision(&prec);
        const struct
        {
            const char *name;
            Tensor out;
        } execs[] = {{"fused", fexec.run(image)},
                     {"linebuffer", lexec.run(image)},
                     {"recompute", rexec.run(image)}};
        for (const auto &e : execs) {
            const bool same = tensorsEqual(refp, e.out);
            std::printf("%-10s vs %s reference: %s\n", e.name,
                        precisionName(precision),
                        same ? "bit-exact" : "MISMATCH");
            prec_ok = prec_ok && same;
        }
        CompareResult dev = compareTensors(ref32, refp, 1.0, 0.0);
        std::printf("deviation from fp32 reference: max abs %.3e, "
                    "max rel %.3e\n",
                    dev.maxAbsDiff, dev.maxRelDiff);

        int64_t welems = 0, aelems = 0;
        for (int li = 0; li <= last; li++) {
            const LayerSpec &spec = net.layer(li);
            if (spec.kind == LayerKind::Conv) {
                const FilterBank &fb = weights.bank(net.convSlot(li));
                welems += static_cast<int64_t>(fb.numFilters()) *
                          fb.numChannels() * fb.kernel() * fb.kernel();
                aelems += net.inShape(li).elems();
            }
        }
        Table pt({"dtype", "conv weights", "conv activations"});
        for (Precision p :
             {Precision::Fp32, Precision::Fp16, Precision::Int8}) {
            const int64_t eb = precisionElemBytes(p);
            pt.addRow({precisionName(p), formatBytes(welems * eb),
                       formatBytes(aelems * eb)});
        }
        pt.print();
    }

    // Opt-in fast-math tier: run the fp32 fused executors through the
    // FMA kernels and hold them to the tier's accuracy contract. The
    // deviation is a bounded-ULP reordering of each pixel's taps, so
    // the gate is a generous relative tolerance plus the measured
    // worst-case ULP distance for the log (strict per-kernel ULP
    // bounds live in the kernel-level differential tests).
    bool fm_ok = true;
    if (fast_math && precision == Precision::Fp32) {
        std::printf("\n== fast-math host executors (%s) ==\n",
                    convFmaEnabled() ? "FMA kernels active"
                                     : "FMA unavailable, exact tier");
        Tensor ref = runRange(net, weights, image, 0, last);

        FusedExecutor fexec(net, weights, TilePlan(net, 0, last, 2, 2));
        fexec.setFastMath(true);
        LineBufferExecutor lexec(net, weights, 0, last);
        lexec.setFastMath(true);
        RecomputeExecutor rexec(net, weights,
                                TilePlan(net, 0, last, 2, 2));
        rexec.setFastMath(true);
        const struct
        {
            const char *name;
            Tensor out;
        } execs[] = {{"fused", fexec.run(image)},
                     {"linebuffer", lexec.run(image)},
                     {"recompute", rexec.run(image)}};
        for (const auto &e : execs) {
            CompareResult fm = compareTensors(ref, e.out, 5e-3, 5e-4);
            const int64_t ulp = maxUlpDistance(ref, e.out);
            std::printf("%-10s vs exact reference: %s, max ULP %lld\n",
                        e.name, fm.match ? "within bound" : "OUT OF BOUND",
                        static_cast<long long>(ulp));
            fm_ok = fm_ok && fm.match;
        }
    } else if (fast_math) {
        std::printf("\n--fast-math ignored: %s mode always runs the "
                    "exact tier\n",
                    precisionName(precision));
    }
    return cmp.match && prec_ok && fm_ok ? 0 : 1;
}
