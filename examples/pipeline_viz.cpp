/**
 * @file
 * Pipeline visualizer: render the Figure 6 schedule of a fused design
 * as an ASCII Gantt chart, with per-stage utilization — useful for
 * seeing how unroll balancing affects the pipeline.
 *
 * Usage:
 *   pipeline_viz [dsp_budget] [--metrics-json FILE] [--trace-json FILE]
 *
 * The trace renders the same schedule as the ASCII chart, but with
 * exact cycle bounds per (pyramid, stage) cell — drop the file on
 * ui.perfetto.dev to scrub through it.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "accel/fused_accel.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "nn/zoo.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/timeline.hh"

using namespace flcnn;

int
main(int argc, char **argv)
{
    int budget = 200;
    std::string metrics_path, trace_path;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "--metrics-json") == 0)
            metrics_path = argValue(argc, argv, &a);
        else if (std::strcmp(argv[a], "--trace-json") == 0)
            trace_path = argValue(argc, argv, &a);
        else if (argv[a][0] != '-')
            budget = parseIntArgI("dsp budget", argv[a], 1, 1000000);
        else
            fatal("unknown argument '%s'", argv[a]);
    }

    Network net("viz", Shape{3, 20, 20});
    net.addConvBlock("conv1", 8, 3, 1, 1);
    net.addConvBlock("conv2", 8, 3, 1, 1);
    net.addMaxPool("pool1", 2, 2);
    const int last = net.numLayers() - 1;

    Rng rng(5);
    NetworkWeights weights(net, rng);
    Tensor image(net.inputShape());
    image.fillRandom(rng);

    FusedPipelineConfig cfg = balanceFusedPipeline(net, 0, last, budget);
    std::printf("DSP budget %d -> unrolls:", budget);
    for (const auto &u : cfg.unrolls)
        std::printf(" %s(Tm=%d,Tn=%d)", net.layer(u.layerIdx).name.c_str(),
                    u.tm, u.tn);
    std::printf(" (total %d DSPs)\n\n", cfg.totalDsp);

    FusedAccelerator accel(net, weights, 0, last, cfg);
    MetricsRegistry reg;
    if (!metrics_path.empty() || !trace_path.empty())
        accel.setMetrics(&reg);
    AccelStats stats;
    accel.run(image, &stats);
    const PipelineSchedule &s = accel.schedule();

    std::vector<std::string> names{"Load"};
    for (int li = 0; li <= last; li++)
        names.push_back(net.layer(li).name);
    names.push_back("Store");

    if (s.slotsKept())
        std::printf("%s\n", s.gantt(names).c_str());

    Table t({"stage", "busy cycles", "utilization"});
    for (int st = 0; st < s.numStages(); st++) {
        if (s.stageBusy(st) == 0)
            continue;
        t.addRow({names[static_cast<size_t>(st)],
                  formatCount(s.stageBusy(st)),
                  fmtF(100.0 * s.stageUtilization(st), 1) + "%"});
    }
    t.print();
    std::printf("\nmakespan: %s cycles for %lld pyramids\n",
                formatCount(s.makespan()).c_str(),
                static_cast<long long>(s.numPyramids()));
    std::printf("try different budgets (e.g. 50, 500, 2000) to see the "
                "pipeline re-balance.\n");

    const std::string label = "pipeline_viz dsp=" + std::to_string(budget);
    if (!metrics_path.empty()) {
        MetricsReport rep(label);
        rep.addRun("fused", stats, reg);
        if (rep.writeFile(metrics_path))
            std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
        if (writeFusedTraceFile(trace_path, label, s, names, &reg,
                                nullptr, nullptr,
                                accelStatsArgs(stats)))
            std::printf("wrote trace to %s (open in ui.perfetto.dev)\n",
                        trace_path.c_str());
    }
    return 0;
}
