/**
 * @file
 * Pipeline visualizer: render the Figure 6 schedule of a fused design
 * as an ASCII Gantt chart, with per-stage utilization — useful for
 * seeing how unroll balancing affects the pipeline.
 *
 * Usage:
 *   pipeline_viz [dsp_budget]
 */

#include <cstdio>
#include <cstdlib>

#include "accel/fused_accel.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "nn/zoo.hh"

using namespace flcnn;

int
main(int argc, char **argv)
{
    int budget = argc > 1 ? std::atoi(argv[1]) : 200;

    Network net("viz", Shape{3, 20, 20});
    net.addConvBlock("conv1", 8, 3, 1, 1);
    net.addConvBlock("conv2", 8, 3, 1, 1);
    net.addMaxPool("pool1", 2, 2);
    const int last = net.numLayers() - 1;

    Rng rng(5);
    NetworkWeights weights(net, rng);
    Tensor image(net.inputShape());
    image.fillRandom(rng);

    FusedPipelineConfig cfg = balanceFusedPipeline(net, 0, last, budget);
    std::printf("DSP budget %d -> unrolls:", budget);
    for (const auto &u : cfg.unrolls)
        std::printf(" %s(Tm=%d,Tn=%d)", net.layer(u.layerIdx).name.c_str(),
                    u.tm, u.tn);
    std::printf(" (total %d DSPs)\n\n", cfg.totalDsp);

    FusedAccelerator accel(net, weights, 0, last, cfg);
    accel.run(image);
    const PipelineSchedule &s = accel.schedule();

    std::vector<std::string> names{"Load"};
    for (int li = 0; li <= last; li++)
        names.push_back(net.layer(li).name);
    names.push_back("Store");

    if (s.slotsKept())
        std::printf("%s\n", s.gantt(names).c_str());

    Table t({"stage", "busy cycles", "utilization"});
    for (int st = 0; st < s.numStages(); st++) {
        if (s.stageBusy(st) == 0)
            continue;
        t.addRow({names[static_cast<size_t>(st)],
                  formatCount(s.stageBusy(st)),
                  fmtF(100.0 * s.stageUtilization(st), 1) + "%"});
    }
    t.print();
    std::printf("\nmakespan: %s cycles for %lld pyramids\n",
                formatCount(s.makespan()).c_str(),
                static_cast<long long>(s.numPyramids()));
    std::printf("try different budgets (e.g. 50, 500, 2000) to see the "
                "pipeline re-balance.\n");
    return 0;
}
