/**
 * @file
 * serve_bench — load generator and latency reporter for the batched
 * serving runtime (src/serve/).
 *
 * Two load models:
 *
 *  - closed loop (--concurrency N): N client threads each submit one
 *    request, wait for it, and immediately submit the next. Blocking
 *    on a full queue is the backpressure, so nothing is rejected and
 *    the offered load self-regulates — the right model for "how fast
 *    can this box serve".
 *  - open loop (--qps X): one dispatcher submits on a deterministic
 *    fixed-interval schedule (exactly 1/X seconds apart) regardless of
 *    completions — the right model for "what does p99 look like at
 *    this arrival rate". Under the Reject policy a saturated queue
 *    sheds load, and the reject count is part of the result. A reaper
 *    thread retires handles in submit order, so arena slots and
 *    pooled handles recycle at the completion rate.
 *
 * Multi-tenant mode (--models a,b[,c...]): several models co-resident
 * on one server, request i deterministically routed to model i mod M.
 * --slo lc,be assigns SLO classes per model and --budget-ms gives
 * latency-critical models a p99 budget; the report then breaks
 * latency out per model and per class, and counts best-effort
 * requests shed to defend the budget. The ledger invariant widens to
 * submitted == admitted + rejected + cancelled + shed.
 *
 * Requests ride the zero-copy path: inputs are written straight into
 * the server's arena (acquireInput/submit), outputs come back as
 * arena views, and the arena/handle-pool fallback counters are part
 * of the result — a steady-state run on a well-sized server reports
 * zero for all of them.
 *
 * Inputs are drawn from a small seeded pool so the run is
 * reproducible. Unless --no-baseline is given (single-model runs
 * only), the same number of single-image runs is timed sequentially
 * on one engine and the serve/sequential speedup is printed.
 *
 * Output: a human table, plus optional machine artifacts —
 *   --json PATH          flcnn-serve-v1 result (latency percentiles,
 *                        counts, per-model breakdown; folded into
 *                        BENCH_<date>.json by scripts/run_bench.py and
 *                        validated by scripts/check_trace.py)
 *   --metrics-json PATH  flcnn-metrics-v1 report ("serve:*" scopes)
 *   --trace-json PATH    Chrome trace with per-request queue/compute
 *                        spans
 *
 * The histogram-count == completed-count invariant is asserted on
 * every run; --expect-no-rejects additionally fails the run if any
 * request was rejected (the CI closed-loop smoke).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "accel/stats.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "nn/autotune_net.hh"
#include "nn/precision.hh"
#include "nn/zoo.hh"
#include "tune/autotune.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/trace_event.hh"
#include "serve/server.hh"

using namespace flcnn;

namespace {

struct Options
{
    std::vector<std::string> models;  // --models a,b (or single --net)
    std::vector<SloClass> slos;       // parallel to models
    int vggConvs = 5;
    Precision precision = Precision::Fp32;
    EngineKind engine = EngineKind::LineBuffer;
    int workers = 0;          // 0 = auto
    int requests = 32;
    int concurrency = 4;      // closed loop unless --qps given
    double qps = 0.0;         // > 0 selects open loop
    int batchMax = 8;
    int batchMin = 1;
    double maxDelayMs = 0.0;
    size_t queueCap = 256;
    OverflowPolicy policy = OverflowPolicy::Block;
    bool policySet = false;
    double deadlineMs = 0.0;
    double budgetMs = 0.0;    // p99 budget for LC models (0 = none)
    double shedHeadroom = 0.7;
    bool pin = false;         // core-affinity worker placement
    int arenaSlots = 32;      // per-worker output arena slots
    int threads = 0;          // intra-op pool size (0 = default)
    uint64_t seed = 1;
    bool baseline = true;
    bool expectNoRejects = false;
    bool fastMath = false;    // opt-in ULP-bounded fp32 FMA tier
    bool tune = false;        // autotune conv layers at warmup
    std::string jsonPath;
    std::string metricsPath;
    std::string tracePath;
};

Network
makeNetByName(const std::string &name, int vgg_convs)
{
    if (name == "alexnet")
        return alexnetFusedPrefix();
    if (name == "vgg")
        return vggEPrefix(vgg_convs);
    if (name == "tiny")
        return tinyNet();
    fatal("unknown model '%s' (want alexnet | vgg | tiny)",
          name.c_str());
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        const size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > start)
            out.push_back(s.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

SloClass
sloFromName(const std::string &s)
{
    if (s == "lc" || s == "latency_critical")
        return SloClass::LatencyCritical;
    if (s == "be" || s == "best_effort")
        return SloClass::BestEffort;
    fatal("unknown SLO class '%s' (want lc | be)", s.c_str());
}

/** One latency histogram as a JSON object body. An empty histogram has
 *  no meaningful percentiles (quantile() returns NaN, which is not
 *  valid JSON), so only the count is emitted. */
void
histJson(std::FILE *f, const char *indent, const char *key,
         const LatencyHistogram &h, bool last)
{
    if (h.count() == 0) {
        std::fprintf(f, "%s\"%s\": {\"count\": 0}%s\n", indent, key,
                     last ? "" : ",");
        return;
    }
    std::fprintf(f,
                 "%s\"%s\": {\"count\": %" PRId64
                 ", \"mean\": %.3f, \"p50\": %.3f, \"p95\": %.3f, "
                 "\"p99\": %.3f, \"max\": %.3f}%s\n",
                 indent, key, h.count(), h.mean(), h.quantile(0.50),
                 h.quantile(0.95), h.quantile(0.99), h.max(),
                 last ? "" : ",");
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (size_t i = 0; i < names.size(); i++) {
        if (i)
            out += ",";
        out += names[i];
    }
    return out;
}

void
writeServeJson(const Options &opt, const InferenceServer &server,
               double wall_s, double baseline_s, int workers)
{
    const ServerStats &st = server.stats();
    std::FILE *f = std::fopen(opt.jsonPath.c_str(), "w");
    if (!f)
        fatal("cannot write %s", opt.jsonPath.c_str());
    const LatencyHistogram total = st.totalLatency();
    const LatencyHistogram queue = st.queueWait();
    const LatencyHistogram compute = st.computeTime();
    std::fprintf(f, "{\n  \"schema\": \"flcnn-serve-v1\",\n");
    std::fprintf(f,
                 "  \"config\": {\"net\": \"%s\", \"engine\": \"%s\", "
                 "\"precision\": \"%s\", "
                 "\"mode\": \"%s\", \"workers\": %d, \"requests\": %d, "
                 "\"concurrency\": %d, \"qps\": %.3f, "
                 "\"batch_max\": %d, \"batch_min\": %d, "
                 "\"queue_capacity\": %zu, \"policy\": \"%s\", "
                 "\"deadline_ms\": %.3f, \"budget_ms\": %.3f, "
                 "\"pin\": %s, \"seed\": %" PRIu64 "},\n",
                 joinNames(opt.models).c_str(),
                 engineKindName(opt.engine),
                 precisionName(opt.precision),
                 opt.qps > 0.0 ? "open" : "closed", workers,
                 opt.requests, opt.concurrency, opt.qps, opt.batchMax,
                 opt.batchMin, opt.queueCap,
                 overflowPolicyName(opt.policy), opt.deadlineMs,
                 opt.budgetMs, opt.pin ? "true" : "false", opt.seed);
    std::fprintf(f,
                 "  \"counts\": {\"submitted\": %" PRId64
                 ", \"admitted\": %" PRId64 ", \"rejected\": %" PRId64
                 ", \"expired\": %" PRId64 ", \"cancelled\": %" PRId64
                 ", \"shed\": %" PRId64
                 ", \"completed\": %" PRId64 ", \"batches\": %" PRId64
                 ", \"mean_batch\": %.3f, \"max_batch\": %.0f},\n",
                 st.submitted(), st.admitted(), st.rejected(),
                 st.expired(), st.cancelled(), st.shed(),
                 st.completed(), st.batches(), st.meanBatch(),
                 st.maxBatchSeen());
    std::fprintf(f, "  \"latency_us\": {\n");
    histJson(f, "    ", "total", total, false);
    histJson(f, "    ", "queue_wait", queue, false);
    histJson(f, "    ", "compute", compute, true);
    std::fprintf(f, "  },\n");
    // An array, not an object: --models may repeat a name (several
    // tenants of the same network), and object keys would collide.
    std::fprintf(f, "  \"models\": [\n");
    for (size_t m = 0; m < opt.models.size(); m++) {
        const LatencyHistogram h =
            st.modelLatency(static_cast<int>(m));
        std::fprintf(f, "    {\"name\": \"%s\", \"class\": \"%s\",\n",
                     opt.models[m].c_str(),
                     sloClassName(opt.slos[m]));
        histJson(f, "      ", "total_us", h, true);
        std::fprintf(f, "    }%s\n",
                     m + 1 < opt.models.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"classes\": {\n");
    histJson(f, "    ", "latency_critical",
             st.classLatency(SloClass::LatencyCritical), false);
    histJson(f, "    ", "best_effort",
             st.classLatency(SloClass::BestEffort), true);
    std::fprintf(f, "  },\n");
    const ArenaStats in = server.inputArenaStats();
    const ArenaStats out = server.outputArenaStats();
    std::fprintf(f,
                 "  \"arena\": {\"input_fallbacks\": %" PRId64
                 ", \"output_fallbacks\": %" PRId64
                 ", \"handle_heap_fallbacks\": %" PRId64
                 ", \"pinned_workers\": %d},\n",
                 in.exhaustedFallbacks + in.oversizedFallbacks,
                 out.exhaustedFallbacks + out.oversizedFallbacks,
                 server.handleHeapFallbacks(), server.pinnedWorkers());
    std::fprintf(f,
                 "  \"wall_s\": %.6f,\n  \"throughput_rps\": %.3f",
                 wall_s,
                 wall_s > 0.0 ? double(st.completed()) / wall_s : 0.0);
    if (baseline_s > 0.0)
        std::fprintf(f,
                     ",\n  \"sequential_wall_s\": %.6f,\n"
                     "  \"speedup_vs_sequential\": %.3f",
                     baseline_s, baseline_s / wall_s);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", opt.jsonPath.c_str());
}

double
quantileMs(const LatencyHistogram &h, double q)
{
    return h.quantile(q) / 1000.0;
}

/** Fill-and-submit through the zero-copy path: the image is written
 *  straight into the server's input arena, and downstream nothing
 *  copies it again. */
SubmitResult
submitZeroCopy(InferenceServer &server, int model, const Tensor &image)
{
    InputSlot slot = server.acquireInput(model);
    FLCNN_ASSERT(slot.tensor.elems() == image.elems(),
                 "input pool / model shape mismatch");
    std::memcpy(slot.tensor.data(), image.data(),
                static_cast<size_t>(image.elems()) * sizeof(float));
    return server.submit(std::move(slot));
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> sloNames;
    std::string netArg;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "--net") == 0) {
            netArg = argValue(argc, argv, &a);
        } else if (std::strcmp(argv[a], "--models") == 0) {
            opt.models = splitCsv(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "--slo") == 0) {
            sloNames = splitCsv(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "--budget-ms") == 0) {
            opt.budgetMs = parseFloatArg(
                "--budget-ms", argValue(argc, argv, &a), 0.0, 1e6);
        } else if (std::strcmp(argv[a], "--shed-headroom") == 0) {
            opt.shedHeadroom = parseFloatArg(
                "--shed-headroom", argValue(argc, argv, &a), 1e-3, 10.0);
        } else if (std::strcmp(argv[a], "--pin") == 0) {
            opt.pin = true;
        } else if (std::strcmp(argv[a], "--arena-slots") == 0) {
            opt.arenaSlots = parseIntArgI(
                "--arena-slots", argValue(argc, argv, &a), 0, 1 << 20);
        } else if (std::strcmp(argv[a], "--convs") == 0) {
            opt.vggConvs = parseIntArgI("--convs",
                                        argValue(argc, argv, &a), 1, 16);
        } else if (std::strcmp(argv[a], "--precision") == 0) {
            opt.precision = precisionFromName(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "--engine") == 0) {
            opt.engine = engineKindFromName(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "--workers") == 0) {
            opt.workers = parseIntArgI("--workers",
                                       argValue(argc, argv, &a), 1, 4096);
        } else if (std::strcmp(argv[a], "--requests") == 0) {
            opt.requests = parseIntArgI(
                "--requests", argValue(argc, argv, &a), 1, 1 << 24);
        } else if (std::strcmp(argv[a], "--concurrency") == 0) {
            opt.concurrency = parseIntArgI(
                "--concurrency", argValue(argc, argv, &a), 1, 4096);
        } else if (std::strcmp(argv[a], "--qps") == 0) {
            opt.qps = parseFloatArg("--qps", argValue(argc, argv, &a),
                                    1e-3, 1e9);
        } else if (std::strcmp(argv[a], "--batch-max") == 0) {
            opt.batchMax = parseIntArgI("--batch-max",
                                        argValue(argc, argv, &a), 1, 4096);
        } else if (std::strcmp(argv[a], "--batch-min") == 0) {
            opt.batchMin = parseIntArgI("--batch-min",
                                        argValue(argc, argv, &a), 1, 4096);
        } else if (std::strcmp(argv[a], "--max-delay-ms") == 0) {
            opt.maxDelayMs = parseFloatArg(
                "--max-delay-ms", argValue(argc, argv, &a), 0.0, 1e6);
        } else if (std::strcmp(argv[a], "--queue-cap") == 0) {
            opt.queueCap = static_cast<size_t>(parseIntArg(
                "--queue-cap", argValue(argc, argv, &a), 1, 1 << 24));
        } else if (std::strcmp(argv[a], "--policy") == 0) {
            const char *p = argValue(argc, argv, &a);
            if (std::strcmp(p, "block") == 0)
                opt.policy = OverflowPolicy::Block;
            else if (std::strcmp(p, "reject") == 0)
                opt.policy = OverflowPolicy::Reject;
            else
                fatal("--policy wants block | reject (got '%s')", p);
            opt.policySet = true;
        } else if (std::strcmp(argv[a], "--deadline-ms") == 0) {
            opt.deadlineMs = parseFloatArg(
                "--deadline-ms", argValue(argc, argv, &a), 0.0, 1e6);
        } else if (std::strcmp(argv[a], "--threads") == 0) {
            opt.threads = parseIntArgI("--threads",
                                       argValue(argc, argv, &a), 1,
                                       1 << 20);
        } else if (std::strcmp(argv[a], "--seed") == 0) {
            opt.seed = static_cast<uint64_t>(parseIntArg(
                "--seed", argValue(argc, argv, &a), 0, INT64_MAX));
        } else if (std::strcmp(argv[a], "--no-baseline") == 0) {
            opt.baseline = false;
        } else if (std::strcmp(argv[a], "--expect-no-rejects") == 0) {
            opt.expectNoRejects = true;
        } else if (std::strcmp(argv[a], "--fast-math") == 0) {
            opt.fastMath = true;
        } else if (std::strcmp(argv[a], "--tune") == 0) {
            opt.tune = true;
        } else if (std::strcmp(argv[a], "--json") == 0) {
            opt.jsonPath = argValue(argc, argv, &a);
        } else if (std::strcmp(argv[a], "--metrics-json") == 0) {
            opt.metricsPath = argValue(argc, argv, &a);
        } else if (std::strcmp(argv[a], "--trace-json") == 0) {
            opt.tracePath = argValue(argc, argv, &a);
        } else {
            fatal("unknown argument '%s'", argv[a]);
        }
    }
    if (opt.models.empty())
        opt.models = {netArg.empty() ? "alexnet" : netArg};
    else if (!netArg.empty())
        fatal("--net and --models are mutually exclusive");
    const int nModels = static_cast<int>(opt.models.size());
    opt.slos.assign(opt.models.size(), SloClass::LatencyCritical);
    if (!sloNames.empty()) {
        if (sloNames.size() != opt.models.size())
            fatal("--slo needs one class per model (%zu models, %zu "
                  "classes)",
                  opt.models.size(), sloNames.size());
        for (size_t m = 0; m < sloNames.size(); m++)
            opt.slos[m] = sloFromName(sloNames[m]);
    }

    ThreadPool::setGlobalThreads(opt.threads);
    const int hw = ThreadPool::global().numThreads();
    const bool open_loop = opt.qps > 0.0;
    if (!opt.policySet)
        opt.policy = open_loop ? OverflowPolicy::Reject
                               : OverflowPolicy::Block;
    int workers = opt.workers;
    if (workers == 0)
        workers = open_loop ? std::max(1, hw / 2)
                            : std::min(opt.concurrency, std::max(1, hw));

    // Build every model: network, weights, precision calibration.
    // Weight seeds differ per model so co-resident models are
    // genuinely distinct tenants.
    std::vector<Network> nets;
    std::vector<NetworkWeights> weightSets;
    std::vector<NetPrecision> precisions;
    nets.reserve(opt.models.size());
    weightSets.reserve(opt.models.size());
    precisions.reserve(opt.models.size());
    for (size_t m = 0; m < opt.models.size(); m++) {
        nets.push_back(makeNetByName(opt.models[m], opt.vggConvs));
        Rng wrng(opt.seed + m);
        weightSets.emplace_back(nets.back(), wrng);
        precisions.push_back(NetPrecision::calibrate(
            nets.back(), weightSets.back(), opt.precision));
    }

    // --tune: sweep the models' conv layers through the autotuner up
    // front (what ServeEngine::warmup() would do with tuneAtWarmup)
    // so the cold/warm split is visible in the output — the CI smoke
    // greps for "0 newly tuned" on the warm run.
    const bool fm = opt.fastMath && opt.precision == Precision::Fp32;
    if (opt.tune) {
        int tuned = 0, cached = 0;
        for (const Network &net : nets) {
            AutotuneSummary sum = autotuneQueries(convQueriesForRange(
                net, 0, net.numLayers() - 1, opt.precision, fm));
            tuned += sum.tuned;
            cached += sum.cached;
        }
        std::printf("autotune: %d newly tuned, %d cached\n", tuned,
                    cached);
    }

    // Deterministic input pool per model: request i (for model
    // i % nModels) uses pool entry (i / nModels) % kInputPool.
    constexpr int kInputPool = 8;
    std::vector<std::vector<Tensor>> inputs(opt.models.size());
    for (size_t m = 0; m < opt.models.size(); m++) {
        Rng irng(opt.seed + 1 + m);
        inputs[m].reserve(kInputPool);
        for (int i = 0; i < kInputPool; i++) {
            inputs[m].emplace_back(nets[m].inputShape());
            inputs[m].back().fillRandom(irng);
        }
    }

    ServeConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = opt.queueCap;
    cfg.policy = opt.policy;
    cfg.batch.maxBatch = opt.batchMax;
    cfg.batch.minBatch = opt.batchMin;
    cfg.batch.maxDelaySeconds = opt.maxDelayMs / 1000.0;
    cfg.deadlineSeconds = opt.deadlineMs / 1000.0;
    cfg.engine = opt.engine;
    cfg.pinWorkers = opt.pin;
    cfg.outArenaSlots = opt.arenaSlots;
    cfg.shedHeadroom = opt.shedHeadroom;

    std::printf("== serve_bench: %s on %s (%s), %s loop ==\n",
                engineKindName(opt.engine),
                joinNames(opt.models).c_str(),
                precisionName(opt.precision),
                open_loop ? "open" : "closed");
    std::printf("workers %d%s, queue %zu (%s), batch [%d, %d], "
                "delay %.1f ms, deadline %s, %d requests, %s, "
                "intra-op threads %d\n",
                workers, opt.pin ? " (pinned)" : "", opt.queueCap,
                overflowPolicyName(opt.policy), opt.batchMin,
                opt.batchMax, opt.maxDelayMs,
                opt.deadlineMs > 0.0
                    ? (std::to_string(opt.deadlineMs) + " ms").c_str()
                    : "none",
                opt.requests,
                open_loop
                    ? (std::to_string(opt.qps) + " qps").c_str()
                    : ("concurrency " + std::to_string(opt.concurrency))
                          .c_str(),
                hw);

    InferenceServer server(cfg);
    for (size_t m = 0; m < opt.models.size(); m++) {
        const NetPrecision *precp = opt.precision == Precision::Fp32
                                        ? nullptr
                                        : &precisions[m];
        server.addModel(opt.models[m], nets[m], weightSets[m], 0, -1,
                        precp, fm, false, opt.slos[m],
                        opt.slos[m] == SloClass::LatencyCritical
                            ? opt.budgetMs
                            : 0.0);
    }
    server.start();

    const double t0 = monotonicSeconds();
    if (open_loop) {
        // Reaper: retire handles in submit order so completed
        // requests release their arena slots and pooled handles at
        // the completion rate — an open-loop client that hoarded
        // every handle would turn the bounded pools into heap
        // fallbacks and measure the wrong thing.
        std::mutex remu;
        std::condition_variable recv;
        std::deque<RequestHandlePtr> pending;
        bool doneSubmitting = false;
        std::thread reaper([&] {
            for (;;) {
                RequestHandlePtr h;
                {
                    std::unique_lock<std::mutex> lk(remu);
                    recv.wait(lk, [&] {
                        return !pending.empty() || doneSubmitting;
                    });
                    if (pending.empty())
                        return;
                    h = std::move(pending.front());
                    pending.pop_front();
                }
                h->wait();
            }
        });
        const double interval = 1.0 / opt.qps;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < opt.requests; i++) {
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(i * interval));
            const int m = i % nModels;
            SubmitResult r = submitZeroCopy(
                server, m, inputs[m][(i / nModels) % kInputPool]);
            {
                std::lock_guard<std::mutex> lk(remu);
                pending.push_back(std::move(r.handle));
            }
            recv.notify_one();
        }
        {
            std::lock_guard<std::mutex> lk(remu);
            doneSubmitting = true;
        }
        recv.notify_one();
        reaper.join();
    } else {
        std::atomic<int> next{0};
        std::vector<std::thread> clients;
        clients.reserve(static_cast<size_t>(opt.concurrency));
        for (int c = 0; c < opt.concurrency; c++) {
            clients.emplace_back([&] {
                for (;;) {
                    const int i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= opt.requests)
                        return;
                    const int m = i % nModels;
                    SubmitResult r = submitZeroCopy(
                        server, m,
                        inputs[m][(i / nModels) % kInputPool]);
                    r.handle->wait();
                }
            });
        }
        for (std::thread &t : clients)
            t.join();
    }
    server.drainAndStop();
    const double wall = monotonicSeconds() - t0;

    const ServerStats &st = server.stats();
    const LatencyHistogram total = st.totalLatency();
    const LatencyHistogram queue = st.queueWait();
    const LatencyHistogram compute = st.computeTime();

    // Invariants (also the CI smoke's checks): every completion is
    // recorded in every histogram exactly once, and the admission
    // ledger balances.
    if (total.count() != st.completed() ||
        queue.count() != st.completed() ||
        compute.count() != st.completed())
        fatal("histogram count %" PRId64 "/%" PRId64 "/%" PRId64
              " != completed %" PRId64,
              total.count(), queue.count(), compute.count(),
              st.completed());
    if (st.admitted() != st.completed() + st.expired())
        fatal("admitted %" PRId64 " != completed %" PRId64
              " + expired %" PRId64,
              st.admitted(), st.completed(), st.expired());
    if (st.submitted() != st.admitted() + st.rejected() +
                              st.cancelled() + st.shed())
        fatal("submitted %" PRId64 " != admitted %" PRId64
              " + rejected %" PRId64 " + cancelled %" PRId64
              " + shed %" PRId64,
              st.submitted(), st.admitted(), st.rejected(),
              st.cancelled(), st.shed());
    if (opt.expectNoRejects && st.rejected() > 0)
        fatal("--expect-no-rejects, but %" PRId64 " rejected",
              st.rejected());

    std::printf("\n%" PRId64 " submitted, %" PRId64 " completed, %" PRId64
                " rejected, %" PRId64 " expired, %" PRId64
                " shed; %" PRId64 " batches (mean %.2f, max %.0f)\n",
                st.submitted(), st.completed(), st.rejected(),
                st.expired(), st.shed(), st.batches(), st.meanBatch(),
                st.maxBatchSeen());
    std::printf("wall %.3f s, throughput %.1f req/s\n", wall,
                wall > 0.0 ? double(st.completed()) / wall : 0.0);
    const ArenaStats ain = server.inputArenaStats();
    const ArenaStats aout = server.outputArenaStats();
    std::printf("arena: input %" PRId64 " acquires / %" PRId64
                " fallbacks, output %" PRId64 " acquires / %" PRId64
                " fallbacks, handle pool %" PRId64
                " heap fallbacks, %d/%d workers pinned\n",
                ain.acquires,
                ain.exhaustedFallbacks + ain.oversizedFallbacks,
                aout.acquires,
                aout.exhaustedFallbacks + aout.oversizedFallbacks,
                server.handleHeapFallbacks(), server.pinnedWorkers(),
                workers);

    Table t({"latency (ms)", "mean", "p50", "p95", "p99", "max"});
    const struct
    {
        const char *name;
        const LatencyHistogram *h;
    } rows[] = {{"total", &total},
                {"queue wait", &queue},
                {"compute", &compute}};
    for (const auto &row : rows) {
        t.addRow({row.name, fmtF(row.h->mean() / 1000.0, 3),
                  fmtF(quantileMs(*row.h, 0.50), 3),
                  fmtF(quantileMs(*row.h, 0.95), 3),
                  fmtF(quantileMs(*row.h, 0.99), 3),
                  fmtF(row.h->max() / 1000.0, 3)});
    }
    t.print();

    // Per-model breakdown: the mixed-traffic story. p99 against the
    // declared budget is the number the SLO experiment reads.
    if (nModels > 1) {
        std::printf("\n");
        Table mt({"model", "class", "done", "mean ms", "p50", "p95",
                  "p99", "budget"});
        for (int m = 0; m < nModels; m++) {
            const LatencyHistogram h = st.modelLatency(m);
            const bool lc =
                opt.slos[static_cast<size_t>(m)] ==
                SloClass::LatencyCritical;
            mt.addRow(
                {opt.models[static_cast<size_t>(m)],
                 lc ? "lc" : "be", fmtI(h.count()),
                 h.count() ? fmtF(h.mean() / 1000.0, 3) : "-",
                 h.count() ? fmtF(quantileMs(h, 0.50), 3) : "-",
                 h.count() ? fmtF(quantileMs(h, 0.95), 3) : "-",
                 h.count() ? fmtF(quantileMs(h, 0.99), 3) : "-",
                 lc && opt.budgetMs > 0
                     ? fmtF(opt.budgetMs, 1) + " ms"
                     : "-"});
        }
        mt.print();
    }

    // Sequential baseline: N back-to-back single-image runs, each
    // rebuilding the network, weights, plan, and executor from
    // scratch — the cost profile of invoking fused_inference once per
    // image (everything the server's pinned, pre-warmed engines
    // amortize), minus process startup. Single-model runs only (the
    // multi-tenant comparison is the serve run itself).
    double baseline_s = 0.0;
    if (opt.baseline && nModels == 1) {
        const double b0 = monotonicSeconds();
        for (int i = 0; i < opt.requests; i++) {
            Network bnet = makeNetByName(opt.models[0], opt.vggConvs);
            Rng brng(opt.seed);
            NetworkWeights bweights(bnet, brng);
            NetPrecision bprec = NetPrecision::calibrate(
                bnet, bweights, opt.precision);
            ModelSpec spec;
            spec.name = bnet.name();
            spec.net = &bnet;
            spec.weights = &bweights;
            spec.firstLayer = 0;
            spec.lastLayer = bnet.numLayers() - 1;
            spec.precision = opt.precision == Precision::Fp32
                                 ? nullptr
                                 : &bprec;
            spec.fastMath = fm;
            ServeEngine eng(spec, opt.engine);
            (void)eng.run(inputs[0][i % kInputPool]);
        }
        baseline_s = monotonicSeconds() - b0;
        std::printf("\nsequential baseline (cold executor per run): "
                    "%.3f s for %d runs "
                    "(%.1f req/s); serve speedup %.2fx\n",
                    baseline_s, opt.requests,
                    baseline_s > 0.0 ? opt.requests / baseline_s : 0.0,
                    wall > 0.0 ? baseline_s / wall : 0.0);
    }

    if (!opt.jsonPath.empty())
        writeServeJson(opt, server, wall, baseline_s, workers);
    if (!opt.metricsPath.empty()) {
        MetricsRegistry reg;
        server.registerMetrics(reg);
        MetricsReport report("serve_bench " + joinNames(opt.models));
        report.addRun("serve", AccelStats{}, reg);
        if (report.writeFile(opt.metricsPath))
            std::printf("wrote %s\n", opt.metricsPath.c_str());
    }
    if (!opt.tracePath.empty()) {
        ChromeTrace tr;
        server.appendTrace(tr, 1);
        if (tr.writeFile(opt.tracePath))
            std::printf("wrote %s\n", opt.tracePath.c_str());
    }
    return 0;
}
