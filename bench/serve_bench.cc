/**
 * @file
 * serve_bench — load generator and latency reporter for the batched
 * serving runtime (src/serve/).
 *
 * Two load models:
 *
 *  - closed loop (--concurrency N): N client threads each submit one
 *    request, wait for it, and immediately submit the next. Blocking
 *    on a full queue is the backpressure, so nothing is rejected and
 *    the offered load self-regulates — the right model for "how fast
 *    can this box serve".
 *  - open loop (--qps X): one dispatcher submits on a deterministic
 *    fixed-interval schedule (exactly 1/X seconds apart) regardless of
 *    completions — the right model for "what does p99 look like at
 *    this arrival rate". Under the Reject policy a saturated queue
 *    sheds load, and the reject count is part of the result.
 *
 * Inputs are drawn from a small seeded pool so the run is
 * reproducible. Unless --no-baseline is given, the same number of
 * single-image runs is timed sequentially on one engine (the
 * fused_inference deployment model) and the serve/sequential speedup
 * is printed — the batched runtime with request-level parallelism
 * should win on any multi-core host.
 *
 * Output: a human table, plus optional machine artifacts —
 *   --json PATH          flcnn-serve-v1 result (latency percentiles,
 *                        counts; folded into BENCH_<date>.json by
 *                        scripts/run_bench.py and validated by
 *                        scripts/check_trace.py)
 *   --metrics-json PATH  flcnn-metrics-v1 report ("serve:*" scopes)
 *   --trace-json PATH    Chrome trace with per-request queue/compute
 *                        spans
 *
 * The histogram-count == completed-count invariant is asserted on
 * every run; --expect-no-rejects additionally fails the run if any
 * request was rejected (the CI closed-loop smoke).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "accel/stats.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "nn/autotune_net.hh"
#include "nn/precision.hh"
#include "nn/zoo.hh"
#include "tune/autotune.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/trace_event.hh"
#include "serve/server.hh"

using namespace flcnn;

namespace {

struct Options
{
    std::string net = "alexnet";
    int vggConvs = 5;
    Precision precision = Precision::Fp32;
    EngineKind engine = EngineKind::LineBuffer;
    int workers = 0;          // 0 = auto
    int requests = 32;
    int concurrency = 4;      // closed loop unless --qps given
    double qps = 0.0;         // > 0 selects open loop
    int batchMax = 8;
    int batchMin = 1;
    double maxDelayMs = 0.0;
    size_t queueCap = 256;
    OverflowPolicy policy = OverflowPolicy::Block;
    bool policySet = false;
    double deadlineMs = 0.0;
    int threads = 0;          // intra-op pool size (0 = default)
    uint64_t seed = 1;
    bool baseline = true;
    bool expectNoRejects = false;
    bool fastMath = false;    // opt-in ULP-bounded fp32 FMA tier
    bool tune = false;        // autotune conv layers at warmup
    std::string jsonPath;
    std::string metricsPath;
    std::string tracePath;
};

Network
makeNet(const Options &opt)
{
    if (opt.net == "alexnet")
        return alexnetFusedPrefix();
    if (opt.net == "vgg")
        return vggEPrefix(opt.vggConvs);
    if (opt.net == "tiny")
        return tinyNet();
    fatal("unknown --net '%s' (want alexnet | vgg | tiny)",
          opt.net.c_str());
}

/** One latency histogram as a JSON object body. An empty histogram has
 *  no meaningful percentiles (quantile() returns NaN, which is not
 *  valid JSON), so only the count is emitted. */
void
histJson(std::FILE *f, const char *key, const LatencyHistogram &h,
         bool last)
{
    if (h.count() == 0) {
        std::fprintf(f, "    \"%s\": {\"count\": 0}%s\n", key,
                     last ? "" : ",");
        return;
    }
    std::fprintf(f,
                 "    \"%s\": {\"count\": %" PRId64
                 ", \"mean\": %.3f, \"p50\": %.3f, \"p95\": %.3f, "
                 "\"p99\": %.3f, \"max\": %.3f}%s\n",
                 key, h.count(), h.mean(), h.quantile(0.50),
                 h.quantile(0.95), h.quantile(0.99), h.max(),
                 last ? "" : ",");
}

void
writeServeJson(const Options &opt, const ServerStats &st, double wall_s,
               double baseline_s, int workers)
{
    std::FILE *f = std::fopen(opt.jsonPath.c_str(), "w");
    if (!f)
        fatal("cannot write %s", opt.jsonPath.c_str());
    const LatencyHistogram total = st.totalLatency();
    const LatencyHistogram queue = st.queueWait();
    const LatencyHistogram compute = st.computeTime();
    std::fprintf(f, "{\n  \"schema\": \"flcnn-serve-v1\",\n");
    std::fprintf(f,
                 "  \"config\": {\"net\": \"%s\", \"engine\": \"%s\", "
                 "\"precision\": \"%s\", "
                 "\"mode\": \"%s\", \"workers\": %d, \"requests\": %d, "
                 "\"concurrency\": %d, \"qps\": %.3f, "
                 "\"batch_max\": %d, \"batch_min\": %d, "
                 "\"queue_capacity\": %zu, \"policy\": \"%s\", "
                 "\"deadline_ms\": %.3f, \"seed\": %" PRIu64 "},\n",
                 opt.net.c_str(), engineKindName(opt.engine),
                 precisionName(opt.precision),
                 opt.qps > 0.0 ? "open" : "closed", workers,
                 opt.requests, opt.concurrency, opt.qps, opt.batchMax,
                 opt.batchMin, opt.queueCap,
                 overflowPolicyName(opt.policy), opt.deadlineMs,
                 opt.seed);
    std::fprintf(f,
                 "  \"counts\": {\"submitted\": %" PRId64
                 ", \"admitted\": %" PRId64 ", \"rejected\": %" PRId64
                 ", \"expired\": %" PRId64 ", \"cancelled\": %" PRId64
                 ", \"completed\": %" PRId64 ", \"batches\": %" PRId64
                 ", \"mean_batch\": %.3f, \"max_batch\": %.0f},\n",
                 st.submitted(), st.admitted(), st.rejected(),
                 st.expired(), st.cancelled(), st.completed(),
                 st.batches(), st.meanBatch(), st.maxBatchSeen());
    std::fprintf(f, "  \"latency_us\": {\n");
    histJson(f, "total", total, false);
    histJson(f, "queue_wait", queue, false);
    histJson(f, "compute", compute, true);
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"wall_s\": %.6f,\n  \"throughput_rps\": %.3f",
                 wall_s,
                 wall_s > 0.0 ? double(st.completed()) / wall_s : 0.0);
    if (baseline_s > 0.0)
        std::fprintf(f,
                     ",\n  \"sequential_wall_s\": %.6f,\n"
                     "  \"speedup_vs_sequential\": %.3f",
                     baseline_s, baseline_s / wall_s);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", opt.jsonPath.c_str());
}

double
quantileMs(const LatencyHistogram &h, double q)
{
    return h.quantile(q) / 1000.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "--net") == 0) {
            opt.net = argValue(argc, argv, &a);
        } else if (std::strcmp(argv[a], "--convs") == 0) {
            opt.vggConvs = parseIntArgI("--convs",
                                        argValue(argc, argv, &a), 1, 16);
        } else if (std::strcmp(argv[a], "--precision") == 0) {
            opt.precision = precisionFromName(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "--engine") == 0) {
            opt.engine = engineKindFromName(argValue(argc, argv, &a));
        } else if (std::strcmp(argv[a], "--workers") == 0) {
            opt.workers = parseIntArgI("--workers",
                                       argValue(argc, argv, &a), 1, 4096);
        } else if (std::strcmp(argv[a], "--requests") == 0) {
            opt.requests = parseIntArgI(
                "--requests", argValue(argc, argv, &a), 1, 1 << 24);
        } else if (std::strcmp(argv[a], "--concurrency") == 0) {
            opt.concurrency = parseIntArgI(
                "--concurrency", argValue(argc, argv, &a), 1, 4096);
        } else if (std::strcmp(argv[a], "--qps") == 0) {
            opt.qps = parseFloatArg("--qps", argValue(argc, argv, &a),
                                    1e-3, 1e9);
        } else if (std::strcmp(argv[a], "--batch-max") == 0) {
            opt.batchMax = parseIntArgI("--batch-max",
                                        argValue(argc, argv, &a), 1, 4096);
        } else if (std::strcmp(argv[a], "--batch-min") == 0) {
            opt.batchMin = parseIntArgI("--batch-min",
                                        argValue(argc, argv, &a), 1, 4096);
        } else if (std::strcmp(argv[a], "--max-delay-ms") == 0) {
            opt.maxDelayMs = parseFloatArg(
                "--max-delay-ms", argValue(argc, argv, &a), 0.0, 1e6);
        } else if (std::strcmp(argv[a], "--queue-cap") == 0) {
            opt.queueCap = static_cast<size_t>(parseIntArg(
                "--queue-cap", argValue(argc, argv, &a), 1, 1 << 24));
        } else if (std::strcmp(argv[a], "--policy") == 0) {
            const char *p = argValue(argc, argv, &a);
            if (std::strcmp(p, "block") == 0)
                opt.policy = OverflowPolicy::Block;
            else if (std::strcmp(p, "reject") == 0)
                opt.policy = OverflowPolicy::Reject;
            else
                fatal("--policy wants block | reject (got '%s')", p);
            opt.policySet = true;
        } else if (std::strcmp(argv[a], "--deadline-ms") == 0) {
            opt.deadlineMs = parseFloatArg(
                "--deadline-ms", argValue(argc, argv, &a), 0.0, 1e6);
        } else if (std::strcmp(argv[a], "--threads") == 0) {
            opt.threads = parseIntArgI("--threads",
                                       argValue(argc, argv, &a), 1,
                                       1 << 20);
        } else if (std::strcmp(argv[a], "--seed") == 0) {
            opt.seed = static_cast<uint64_t>(parseIntArg(
                "--seed", argValue(argc, argv, &a), 0, INT64_MAX));
        } else if (std::strcmp(argv[a], "--no-baseline") == 0) {
            opt.baseline = false;
        } else if (std::strcmp(argv[a], "--expect-no-rejects") == 0) {
            opt.expectNoRejects = true;
        } else if (std::strcmp(argv[a], "--fast-math") == 0) {
            opt.fastMath = true;
        } else if (std::strcmp(argv[a], "--tune") == 0) {
            opt.tune = true;
        } else if (std::strcmp(argv[a], "--json") == 0) {
            opt.jsonPath = argValue(argc, argv, &a);
        } else if (std::strcmp(argv[a], "--metrics-json") == 0) {
            opt.metricsPath = argValue(argc, argv, &a);
        } else if (std::strcmp(argv[a], "--trace-json") == 0) {
            opt.tracePath = argValue(argc, argv, &a);
        } else {
            fatal("unknown argument '%s'", argv[a]);
        }
    }

    ThreadPool::setGlobalThreads(opt.threads);
    const int hw = ThreadPool::global().numThreads();
    const bool open_loop = opt.qps > 0.0;
    if (!opt.policySet)
        opt.policy = open_loop ? OverflowPolicy::Reject
                               : OverflowPolicy::Block;
    int workers = opt.workers;
    if (workers == 0)
        workers = open_loop ? std::max(1, hw / 2)
                            : std::min(opt.concurrency, std::max(1, hw));

    Network net = makeNet(opt);
    Rng wrng(opt.seed);
    NetworkWeights weights(net, wrng);

    // Calibrate once; every worker engine (and the baseline) shares
    // the same immutable precision state. fp32 passes nullptr — the
    // historical bit-exact path, untouched.
    NetPrecision prec =
        NetPrecision::calibrate(net, weights, opt.precision);
    const NetPrecision *precp =
        opt.precision == Precision::Fp32 ? nullptr : &prec;

    // --tune: sweep the model's conv layers through the autotuner up
    // front (what ServeEngine::warmup() would do with tuneAtWarmup)
    // so the cold/warm split is visible in the output — the CI smoke
    // greps for "0 newly tuned" on the warm run.
    const bool fm = opt.fastMath && opt.precision == Precision::Fp32;
    if (opt.tune) {
        AutotuneSummary sum = autotuneQueries(convQueriesForRange(
            net, 0, net.numLayers() - 1, opt.precision, fm));
        std::printf("autotune: %d newly tuned, %d cached\n", sum.tuned,
                    sum.cached);
    }

    // Deterministic input pool: request i uses inputs[i % pool].
    constexpr int kInputPool = 8;
    std::vector<Tensor> inputs;
    inputs.reserve(kInputPool);
    Rng irng(opt.seed + 1);
    for (int i = 0; i < kInputPool; i++) {
        inputs.emplace_back(net.inputShape());
        inputs.back().fillRandom(irng);
    }

    ServeConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = opt.queueCap;
    cfg.policy = opt.policy;
    cfg.batch.maxBatch = opt.batchMax;
    cfg.batch.minBatch = opt.batchMin;
    cfg.batch.maxDelaySeconds = opt.maxDelayMs / 1000.0;
    cfg.deadlineSeconds = opt.deadlineMs / 1000.0;
    cfg.engine = opt.engine;

    std::printf("== serve_bench: %s on %s (%s), %s loop ==\n",
                engineKindName(opt.engine), net.name().c_str(),
                precisionName(opt.precision),
                open_loop ? "open" : "closed");
    std::printf("workers %d, queue %zu (%s), batch [%d, %d], "
                "delay %.1f ms, deadline %s, %d requests, %s, "
                "intra-op threads %d\n",
                workers, opt.queueCap, overflowPolicyName(opt.policy),
                opt.batchMin, opt.batchMax, opt.maxDelayMs,
                opt.deadlineMs > 0.0
                    ? (std::to_string(opt.deadlineMs) + " ms").c_str()
                    : "none",
                opt.requests,
                open_loop
                    ? (std::to_string(opt.qps) + " qps").c_str()
                    : ("concurrency " + std::to_string(opt.concurrency))
                          .c_str(),
                hw);

    InferenceServer server(cfg);
    server.addModel(net.name(), net, weights, 0, -1, precp, fm);
    server.start();

    const double t0 = monotonicSeconds();
    if (open_loop) {
        std::vector<RequestHandlePtr> handles;
        handles.reserve(static_cast<size_t>(opt.requests));
        const double interval = 1.0 / opt.qps;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < opt.requests; i++) {
            std::this_thread::sleep_until(
                start + std::chrono::duration<double>(i * interval));
            handles.push_back(
                server.submit(0, Tensor(inputs[i % kInputPool])).handle);
        }
        for (const RequestHandlePtr &h : handles)
            h->wait();
    } else {
        std::atomic<int> next{0};
        std::vector<std::thread> clients;
        clients.reserve(static_cast<size_t>(opt.concurrency));
        for (int c = 0; c < opt.concurrency; c++) {
            clients.emplace_back([&] {
                for (;;) {
                    const int i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= opt.requests)
                        return;
                    SubmitResult r = server.submit(
                        0, Tensor(inputs[i % kInputPool]));
                    r.handle->wait();
                }
            });
        }
        for (std::thread &t : clients)
            t.join();
    }
    server.drainAndStop();
    const double wall = monotonicSeconds() - t0;

    const ServerStats &st = server.stats();
    const LatencyHistogram total = st.totalLatency();
    const LatencyHistogram queue = st.queueWait();
    const LatencyHistogram compute = st.computeTime();

    // Invariant (also the CI smoke's check): every completion is
    // recorded in every histogram exactly once.
    if (total.count() != st.completed() ||
        queue.count() != st.completed() ||
        compute.count() != st.completed())
        fatal("histogram count %" PRId64 "/%" PRId64 "/%" PRId64
              " != completed %" PRId64,
              total.count(), queue.count(), compute.count(),
              st.completed());
    if (st.admitted() != st.completed() + st.expired())
        fatal("admitted %" PRId64 " != completed %" PRId64
              " + expired %" PRId64,
              st.admitted(), st.completed(), st.expired());
    if (opt.expectNoRejects && st.rejected() > 0)
        fatal("--expect-no-rejects, but %" PRId64 " rejected",
              st.rejected());

    std::printf("\n%" PRId64 " submitted, %" PRId64 " completed, %" PRId64
                " rejected, %" PRId64 " expired; %" PRId64
                " batches (mean %.2f, max %.0f)\n",
                st.submitted(), st.completed(), st.rejected(),
                st.expired(), st.batches(), st.meanBatch(),
                st.maxBatchSeen());
    std::printf("wall %.3f s, throughput %.1f req/s\n", wall,
                wall > 0.0 ? double(st.completed()) / wall : 0.0);

    Table t({"latency (ms)", "mean", "p50", "p95", "p99", "max"});
    const struct
    {
        const char *name;
        const LatencyHistogram *h;
    } rows[] = {{"total", &total},
                {"queue wait", &queue},
                {"compute", &compute}};
    for (const auto &row : rows) {
        t.addRow({row.name, fmtF(row.h->mean() / 1000.0, 3),
                  fmtF(quantileMs(*row.h, 0.50), 3),
                  fmtF(quantileMs(*row.h, 0.95), 3),
                  fmtF(quantileMs(*row.h, 0.99), 3),
                  fmtF(row.h->max() / 1000.0, 3)});
    }
    t.print();

    // Sequential baseline: N back-to-back single-image runs, each
    // rebuilding the network, weights, plan, and executor from
    // scratch — the cost profile of invoking fused_inference once per
    // image (everything the server's pinned, pre-warmed engines
    // amortize), minus process startup.
    double baseline_s = 0.0;
    if (opt.baseline) {
        const double b0 = monotonicSeconds();
        for (int i = 0; i < opt.requests; i++) {
            Network bnet = makeNet(opt);
            Rng brng(opt.seed);
            NetworkWeights bweights(bnet, brng);
            NetPrecision bprec = NetPrecision::calibrate(
                bnet, bweights, opt.precision);
            ModelSpec spec;
            spec.name = bnet.name();
            spec.net = &bnet;
            spec.weights = &bweights;
            spec.firstLayer = 0;
            spec.lastLayer = bnet.numLayers() - 1;
            spec.precision = opt.precision == Precision::Fp32
                                 ? nullptr
                                 : &bprec;
            spec.fastMath = fm;
            ServeEngine eng(spec, opt.engine);
            (void)eng.run(inputs[i % kInputPool]);
        }
        baseline_s = monotonicSeconds() - b0;
        std::printf("\nsequential baseline (cold executor per run): "
                    "%.3f s for %d runs "
                    "(%.1f req/s); serve speedup %.2fx\n",
                    baseline_s, opt.requests,
                    baseline_s > 0.0 ? opt.requests / baseline_s : 0.0,
                    wall > 0.0 ? baseline_s / wall : 0.0);
    }

    if (!opt.jsonPath.empty())
        writeServeJson(opt, st, wall, baseline_s, workers);
    if (!opt.metricsPath.empty()) {
        MetricsRegistry reg;
        server.registerMetrics(reg);
        MetricsReport report("serve_bench " + opt.net);
        report.addRun("serve", AccelStats{}, reg);
        if (report.writeFile(opt.metricsPath))
            std::printf("wrote %s\n", opt.metricsPath.c_str());
    }
    if (!opt.tracePath.empty()) {
        ChromeTrace tr;
        server.appendTrace(tr, 1);
        if (tr.writeFile(opt.tracePath))
            std::printf("wrote %s\n", opt.tracePath.c_str());
    }
    return 0;
}
