/**
 * @file
 * Extension experiment — the full VGGNet-E design space.
 *
 * The paper sweeps the first five conv stages (64 partitions) and notes
 * its Torch tool explores "even the large VGGNet-E network ... in just
 * a few minutes on a single CPU core". Here we sweep ALL 21 conv/pool
 * stages of VGG-19 — 2^20 = 1,048,576 partitions — with the
 * closed-form storage model, with and without on-chip weight residency
 * in the cost, and time it.
 *
 * The sweep itself is the library's: exploreFusionSpace prices each
 * contiguous stage range once through the shared GroupCostCache (the
 * per-(first,last) table this bench used to build privately) and
 * streams the million partitions over per-thread mask ranges.
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "model/explorer.hh"
#include "nn/zoo.hh"

using namespace flcnn;

namespace {

struct SweepResult
{
    std::vector<DesignPoint> front;
    double seconds = 0.0;
    int64_t points = 0;
};

SweepResult
sweep(const Network &net, bool with_weights)
{
    auto t0 = std::chrono::steady_clock::now();
    ExploreOptions opt;
    opt.exactStorage = false;  // closed form: 2^20 points in seconds
    opt.includeWeightStorage = with_weights;
    ExplorationResult ex = exploreFusionSpace(net, opt);
    SweepResult res;
    res.points = static_cast<int64_t>(ex.points.size());
    res.front = std::move(ex.front);
    res.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    int threads = 0;  // 0 = FLCNN_THREADS or hardware concurrency
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "--threads") == 0)
            threads = parseIntArgI("--threads",
                                   argValue(argc, argv, &a), 1, 1 << 20);
        else
            fatal("unknown argument '%s'", argv[a]);
    }
    ThreadPool::setGlobalThreads(threads);

    std::printf("== Extension: full VGGNet-E design space (all 21 "
                "stages) ==\n\n");
    Network net = vggE();
    std::printf("network: %s, %zu fusable stages, %lld partitions, "
                "%d threads\n\n",
                net.name().c_str(), net.stages().size(),
                static_cast<long long>(countPartitions(
                    static_cast<int>(net.stages().size()))),
                ThreadPool::global().numThreads());

    SweepResult plain = sweep(net, false);
    std::printf("reuse-buffer cost only: %lld partitions in %.1f s, "
                "%zu Pareto-optimal\n",
                static_cast<long long>(plain.points), plain.seconds,
                plain.front.size());
    Table t({"partition (first rows)", "storage", "transfer"});
    size_t shown = 0;
    for (const auto &p : plain.front) {
        if (shown++ >= 10) {
            t.addRow({"...", "...", "..."});
            break;
        }
        t.addRow({partitionStr(p.partition),
                  formatBytes(p.storageBytes),
                  formatBytes(p.transferBytes)});
    }
    t.print();
    std::printf("\nfull fusion of all 21 stages: %s storage for %s "
                "transferred\n(the paper's Section III-C: ~1.4 MB to "
                "fuse everything)\n\n",
                formatBytes(plain.front.back().storageBytes).c_str(),
                formatBytes(plain.front.back().transferBytes).c_str());

    SweepResult weighted = sweep(net, true);
    const DesignPoint *pick = nullptr;
    for (const auto &p : weighted.front) {
        if (p.storageBytes <= 2 * 1024 * 1024)
            pick = &p;
    }
    std::printf("with on-chip weights priced in (%lld partitions in "
                "%.1f s):\n",
                static_cast<long long>(weighted.points),
                weighted.seconds);
    if (pick) {
        std::printf("  best design under a 2 MB budget: %s -> %s "
                    "transferred\n  (fuses the early feature-map-heavy "
                    "stages, leaves the weight-heavy tail\n   "
                    "layer-by-layer — the paper's guidance, derived "
                    "from the full space)\n",
                    partitionStr(pick->partition).c_str(),
                    formatBytes(pick->transferBytes).c_str());
    }
    return 0;
}
