/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot paths:
 * pyramid-plan construction, whole-space exploration, the balance
 * search, and the three fused executors. These are regression guards
 * for the tooling itself (the paper's "explored in just a few minutes"
 * claim is about this code path), not paper experiments.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "dse/sweep.hh"
#include "fusion/fused_executor.hh"
#include "fusion/line_buffer_executor.hh"
#include "fusion/recompute_executor.hh"
#include "kernels/conv_kernels.hh"
#include "kernels/weight_pack.hh"
#include "model/balance.hh"
#include "model/explorer.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tune/solver.hh"

using namespace flcnn;

namespace {

/** One output row computed naively (convPoint per pixel) vs as one
 *  register-tiled strip — the raw kernel speedup, per (K, stride). */
struct StripFixture
{
    Tensor in;
    FilterBank fb;
    int stride;
    int outW;

    StripFixture(int k, int s, int out_w = 128)
        : in(Shape{16, k, s * (out_w - 1) + k}), fb(1, 16, k), stride(s),
          outW(out_w)
    {
        Rng irng(11);
        in.fillRandom(irng);
        Rng wrng(12);
        fb.fillRandom(wrng);
    }
};

void
BM_ConvRowNaive(benchmark::State &state)
{
    StripFixture f(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)));
    std::vector<float> dst(static_cast<size_t>(f.outW));
    for (auto _ : state) {
        for (int x = 0; x < f.outW; x++)
            dst[static_cast<size_t>(x)] =
                convPoint(f.in, f.fb, 0, 0, x * f.stride, 1, 1, nullptr);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * f.outW);
}
BENCHMARK(BM_ConvRowNaive)
    ->Args({1, 1})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({5, 1})
    ->Args({7, 2})
    ->Args({11, 4});

void
BM_ConvRowStrip(benchmark::State &state)
{
    StripFixture f(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)));
    const ConvKernel ks = resolveConvKernel(f.fb.kernel(), f.stride);
    std::vector<float> dst(static_cast<size_t>(f.outW));
    for (auto _ : state) {
        convRowTensor(ks, dst.data(), f.outW, f.in, f.fb, 0, 0, 0, 0);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * f.outW);
}
BENCHMARK(BM_ConvRowStrip)
    ->Args({1, 1})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({5, 1})
    ->Args({7, 2})
    ->Args({11, 4});

void
BM_ConvRowStripGeneric(benchmark::State &state)
{
    // The runtime-(K, stride) fallback, for sizes with no specialized
    // variant — still strip-tiled, just without compile-time constants.
    StripFixture f(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)));
    ConvKernel ks = resolveConvKernel(f.fb.kernel(), f.stride);
    ks.fn = nullptr;  // force the generic path
    std::vector<float> dst(static_cast<size_t>(f.outW));
    for (auto _ : state) {
        convRowTensor(ks, dst.data(), f.outW, f.in, f.fb, 0, 0, 0, 0);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * f.outW);
}
BENCHMARK(BM_ConvRowStripGeneric)->Args({3, 1})->Args({5, 1});

/** Like StripFixture but with a 4-filter bank, for the multi-filter
 *  blocked kernels (one MR x strip register block per pass). */
struct BlockFixture
{
    static constexpr int kFilters = 4;
    Tensor in;
    FilterBank fb;
    int stride;
    int outW;

    BlockFixture(int k, int s, int out_w = 128)
        : in(Shape{16, k, s * (out_w - 1) + k}), fb(kFilters, 16, k),
          stride(s), outW(out_w)
    {
        Rng irng(11);
        in.fillRandom(irng);
        Rng wrng(12);
        fb.fillRandom(wrng);
    }
};

/** The planner's choice for a blocked-row fixture shape, as a bench
 *  label — run_bench.py harvests this into the solver field of each
 *  bench entry. */
std::string
solverLabel(const BlockFixture &f, bool fast_math)
{
    ConvQuery q;
    q.shape = ConvShape{f.fb.kernel(), f.stride, f.in.shape().c,
                        BlockFixture::kFilters, f.outW, 1, 1};
    q.fastMath = fast_math;
    const ConvPlan plan = planConv(q);
    return "solver=" + plan.solver +
           " mr=" + std::to_string(plan.cfg.mrCap) +
           " seg=" + std::to_string(plan.cfg.segW) +
           " grain=" + std::to_string(plan.cfg.grain);
}

void
BM_ConvRowBlocked(benchmark::State &state)
{
    // Four filters in one pass from a packed panel: every loaded input
    // element is reused across the filter lanes (items = pixels x
    // filters, so items/s is comparable with the single-filter strip).
    BlockFixture f(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)));
    const ConvBlockKernel bk =
        resolveConvBlockKernel(f.fb.kernel(), f.stride);
    const PackedWeights pw(f.fb);
    std::vector<float> dst(
        static_cast<size_t>(BlockFixture::kFilters) * f.outW);
    for (auto _ : state) {
        convBlockRowTensor(bk, pw, 0, dst.data(), f.outW, f.outW, f.in,
                           0, 0);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * f.outW *
                            BlockFixture::kFilters);
    state.SetLabel(solverLabel(f, false));
}
BENCHMARK(BM_ConvRowBlocked)
    ->Args({1, 1})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({5, 1})
    ->Args({7, 2})
    ->Args({11, 4});

void
BM_ConvRowFast(benchmark::State &state)
{
    // The opt-in fast-math tier on the same blocked-row shape: FMA
    // with two reordered accumulators per lane (ULP-bounded, not
    // bit-exact). Compare items/s against BM_ConvRowBlocked for the
    // tier's raw kernel speedup.
    if (!convFmaEnabled()) {
        state.SkipWithError("FMA kernels unavailable on this host");
        return;
    }
    BlockFixture f(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)));
    const ConvBlockKernel bk =
        resolveConvBlockKernelFast(f.fb.kernel(), f.stride);
    const PackedWeights pw(f.fb);
    std::vector<float> dst(
        static_cast<size_t>(BlockFixture::kFilters) * f.outW);
    for (auto _ : state) {
        convBlockRowTensor(bk, pw, 0, dst.data(), f.outW, f.outW, f.in,
                           0, 0);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * f.outW *
                            BlockFixture::kFilters);
    state.SetLabel(solverLabel(f, true));
}
BENCHMARK(BM_ConvRowFast)
    ->Args({1, 1})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({5, 1})
    ->Args({7, 2})
    ->Args({11, 4});

void
BM_ConvRowBlockedGeneric(benchmark::State &state)
{
    // The runtime-(K, stride) multi-filter fallback (also what
    // FLCNN_SIMD=OFF builds run for specialized sizes' tails).
    BlockFixture f(static_cast<int>(state.range(0)),
                   static_cast<int>(state.range(1)));
    ConvBlockKernel bk = resolveConvBlockKernel(f.fb.kernel(), f.stride);
    for (int mr = 0; mr <= kConvBlockLanes; mr++)
        bk.fn[mr] = nullptr;  // force the generic path
    const PackedWeights pw(f.fb);
    std::vector<float> dst(
        static_cast<size_t>(BlockFixture::kFilters) * f.outW);
    for (auto _ : state) {
        convBlockRowTensor(bk, pw, 0, dst.data(), f.outW, f.outW, f.in,
                           0, 0);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * f.outW *
                            BlockFixture::kFilters);
}
BENCHMARK(BM_ConvRowBlockedGeneric)->Args({3, 1})->Args({5, 1});

void
BM_WeightPack(benchmark::State &state)
{
    // One-time cost of repacking a VGG-sized bank into filter-
    // interleaved panels (executors amortize this over a whole run).
    const int m = static_cast<int>(state.range(0));
    FilterBank fb(m, 64, 3);
    Rng wrng(13);
    fb.fillRandom(wrng);
    for (auto _ : state) {
        PackedWeights pw(fb);
        benchmark::DoNotOptimize(pw.panel(0));
    }
    state.SetItemsProcessed(state.iterations() * fb.numFilters() *
                            fb.numChannels() * fb.kernel() * fb.kernel());
}
BENCHMARK(BM_WeightPack)->Arg(64)->Arg(256);

void
BM_TilePlanConstruction(benchmark::State &state)
{
    Network net = vggEPrefix(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        TilePlan plan(net, 0, net.numLayers() - 1);
        benchmark::DoNotOptimize(plan.reuseBufferBytes());
    }
}
BENCHMARK(BM_TilePlanConstruction)->Arg(2)->Arg(5)->Arg(8);

void
BM_ExploreFusionSpace(benchmark::State &state)
{
    Network net = vggEPrefix(static_cast<int>(state.range(0)));
    ExploreOptions opt;
    opt.exactStorage = (state.range(1) != 0);
    for (auto _ : state) {
        auto res = exploreFusionSpace(net, opt);
        benchmark::DoNotOptimize(res.front.size());
    }
}
BENCHMARK(BM_ExploreFusionSpace)
    ->Args({5, 1})
    ->Args({5, 0})
    ->Args({8, 0})
    ->Args({10, 0})  // 13 stages, 4096 partitions: the group-cost
                     // cache case (one model eval per range, not per
                     // partition)
    ->Unit(benchmark::kMillisecond);

void
BM_DseChainSweep(benchmark::State &state)
{
    // The schedule-space engine restricted to the paper's chain space:
    // same 2^(l-1) enumeration as BM_ExploreFusionSpace but pricing the
    // full latency/energy/buffer surface per partition.
    Network net = vggEPrefix(static_cast<int>(state.range(0)));
    dse::SweepOptions opt;
    opt.space = dse::Space::Chain;
    opt.cost.withRecompute = true;
    int64_t visited = 0;
    for (auto _ : state) {
        dse::SweepResult res = runSweep(net, opt);
        visited = res.pointsVisited;
        benchmark::DoNotOptimize(res.front.size());
    }
    state.counters["points"] = static_cast<double>(visited);
    state.counters["points_per_s"] = benchmark::Counter(
        static_cast<double>(visited) * state.iterations(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DseChainSweep)
    ->Arg(5)   // 7 stages, 64 partitions
    ->Arg(10)  // 13 stages, 4096 partitions
    ->Unit(benchmark::kMillisecond);

void
BM_DseLoopTreeSweep(benchmark::State &state)
{
    // The enlarged LoopTree space under a fixed point budget: prefix
    // DP over per-range schedule variants (tile heights, retain
    // ladders, alternate dataflows) plus the exact chain DP.
    Network net = vggEPrefix(static_cast<int>(state.range(0)));
    dse::SweepOptions opt;
    opt.space = dse::Space::LoopTree;
    opt.cost.withRecompute = true;
    opt.pointBudget = state.range(1);
    int64_t visited = 0;
    for (auto _ : state) {
        dse::SweepResult res = runSweep(net, opt);
        visited = res.pointsVisited;
        benchmark::DoNotOptimize(res.front.size());
    }
    state.counters["points"] = static_cast<double>(visited);
    state.counters["points_per_s"] = benchmark::Counter(
        static_cast<double>(visited) * state.iterations(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DseLoopTreeSweep)
    ->Args({5, 50'000})
    ->Args({10, 200'000})
    ->Unit(benchmark::kMillisecond);

void
BM_BalanceFusedPipeline(benchmark::State &state)
{
    Network net = vggEPrefix(5);
    for (auto _ : state) {
        auto cfg = balanceFusedPipeline(net, 0, net.numLayers() - 1,
                                        static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(cfg.totalDsp);
    }
}
BENCHMARK(BM_BalanceFusedPipeline)->Arg(500)->Arg(2987);

void
BM_OptimizeBaseline(benchmark::State &state)
{
    Network net = vggEPrefix(5);
    for (auto _ : state) {
        BaselineConfig cfg = optimizeBaseline(net, 2880);
        benchmark::DoNotOptimize(cfg.tm);
    }
}
BENCHMARK(BM_OptimizeBaseline);

struct ExecFixture
{
    Network net;
    NetworkWeights weights;
    Tensor input;

    ExecFixture()
        : net(makeNet()), weights(net, rng()), input(net.inputShape())
    {
        Rng r(3);
        input.fillRandom(r);
    }

    static Network
    makeNet()
    {
        Network n("micro", Shape{3, 32, 32});
        n.addConvBlock("c1", 8, 3, 1, 1);
        n.addMaxPool("p1", 2, 2);
        n.addConvBlock("c2", 8, 3, 1, 1);
        return n;
    }

    static Rng &
    rng()
    {
        static Rng r(2);
        return r;
    }
};

void
BM_ReferenceExecutor(benchmark::State &state)
{
    ExecFixture f;
    for (auto _ : state) {
        Tensor out = runRange(f.net, f.weights, f.input, 0,
                              f.net.numLayers() - 1);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ReferenceExecutor)->Unit(benchmark::kMillisecond);

void
BM_FusedPyramidExecutor(benchmark::State &state)
{
    ExecFixture f;
    FusedExecutor exec(f.net, f.weights,
                       TilePlan(f.net, 0, f.net.numLayers() - 1));
    for (auto _ : state) {
        Tensor out = exec.run(f.input);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_FusedPyramidExecutor)->Unit(benchmark::kMillisecond);

void
BM_LineBufferExecutorMicro(benchmark::State &state)
{
    ExecFixture f;
    LineBufferExecutor exec(f.net, f.weights, 0, f.net.numLayers() - 1,
                            static_cast<int>(state.range(0)));
    for (auto _ : state) {
        Tensor out = exec.run(f.input);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_LineBufferExecutorMicro)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_RecomputeExecutorMicro(benchmark::State &state)
{
    ExecFixture f;
    RecomputeExecutor exec(f.net, f.weights,
                           TilePlan(f.net, 0, f.net.numLayers() - 1));
    for (auto _ : state) {
        Tensor out = exec.run(f.input);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_RecomputeExecutorMicro)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
