/**
 * @file
 * Experiment E1 — Figure 2: input, output, and weight sizes for the
 * convolutional stages of VGGNet-E (pooling merged into the preceding
 * convolution, exactly as the paper's figure does).
 *
 * Paper reference points: conv1 reads 0.6 MB of input and 7 KB of
 * weights and produces 12.3 MB of output; feature maps dominate the
 * first ~8 stages, weights dominate beyond.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/units.hh"
#include "model/transfer.hh"
#include "nn/zoo.hh"

using namespace flcnn;

int
main()
{
    std::printf("== Figure 2: VGGNet-E per-stage data sizes (MB) ==\n");
    Network net = vggE();
    auto sizes = figure2Sizes(net);

    Table t({"stage", "layer", "input MB", "output MB", "weights MB",
             "fmap/total"});
    int stage_no = 0;
    for (const auto &s : sizes) {
        stage_no++;
        double in = toMiB(s.inputBytes);
        double out = toMiB(s.outputBytes);
        double w = toMiB(s.weightBytes);
        double share = (in + out) / (in + out + w);
        t.addRow({fmtI(stage_no), s.name, fmtF(in, 2), fmtF(out, 2),
                  fmtF(w, 2), fmtF(share, 2)});
    }
    t.print();

    int64_t fm = 0, w = 0;
    for (const auto &s : sizes) {
        fm += s.inputBytes + s.outputBytes;
        w += s.weightBytes;
    }
    std::printf("\nfeature-map share of all conv-layer data: %.1f%% "
                "(paper: over 50%% for VGG)\n",
                100.0 * static_cast<double>(fm) /
                    static_cast<double>(fm + w));

    std::printf("\n== Same analysis for AlexNet ==\n");
    Network alex = alexnet();
    auto asz = figure2Sizes(alex);
    Table ta({"stage", "layer", "input MB", "output MB", "weights MB"});
    int no = 0;
    for (const auto &s : asz) {
        no++;
        ta.addRow({fmtI(no), s.name, fmtF(toMiB(s.inputBytes), 2),
                   fmtF(toMiB(s.outputBytes), 2),
                   fmtF(toMiB(s.weightBytes), 2)});
    }
    ta.print();
    int64_t afm = 0, aw = 0;
    for (const auto &s : asz) {
        afm += s.inputBytes + s.outputBytes;
        aw += s.weightBytes;
    }
    std::printf("\nfeature-map share for AlexNet: %.1f%% (paper: ~25%%)\n",
                100.0 * static_cast<double>(afm) /
                    static_cast<double>(afm + aw));
    return 0;
}
