/**
 * @file
 * Experiment E6 — Table II: fused-layer accelerator for the first five
 * convolutional layers of VGGNet-E (plus 2 pools, 5 pads, 5 ReLUs) vs.
 * a baseline derived from Zhang et al. [19]. This is the paper's
 * headline result: 3.64 MB vs 77.14 MB transferred per image (a 95%
 * reduction) for 20% more BRAM and a 6.5% cycle overhead.
 *
 * Both accelerators are executed on a synthetic 224x224x3 image and
 * verified bit-identical before printing measured statistics.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "accel/baseline_accel.hh"
#include "accel/fused_accel.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "nn/zoo.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/timeline.hh"
#include "tensor/compare.hh"

using namespace flcnn;

int
main(int argc, char **argv)
{
    std::string metrics_path, trace_path;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "--metrics-json") == 0)
            metrics_path = argValue(argc, argv, &a);
        else if (std::strcmp(argv[a], "--trace-json") == 0)
            trace_path = argValue(argc, argv, &a);
        else
            fatal("unknown argument '%s'", argv[a]);
    }
    const bool want_obs = !metrics_path.empty() || !trace_path.empty();

    std::printf("== Table II: VGGNet-E first five conv layers, fused vs "
                "baseline ==\n\n");
    Network net = vggEPrefix(5);
    const int last = net.numLayers() - 1;

    Rng wrng(201);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(202);
    input.fillRandom(irng);
    int64_t weight_bytes = net.weightBytesInRange(0, last);

    // Baseline: joint (Tm, Tn) at the paper's 2880-DSP budget with
    // 16x16 output tiles (buffer-sized; see EXPERIMENTS.md).
    BaselineConfig bcfg = optimizeBaseline(net, 2880);
    bcfg.tr = bcfg.tc = 16;
    BaselineAccelerator baseline(net, weights, bcfg);
    MetricsRegistry breg;
    if (want_obs)
        baseline.setMetrics(&breg);
    AccelStats bs;
    Tensor bout = baseline.run(input, &bs);

    // Fused: balanced at the paper's 2987-DSP budget.
    FusedPipelineConfig fcfg = balanceFusedPipeline(net, 0, last, 2987);
    FusedAccelerator fused(net, weights, 0, last, fcfg);
    MetricsRegistry freg;
    if (want_obs)
        fused.setMetrics(&freg);
    AccelStats fs;
    Tensor fout = fused.run(input, &fs);

    CompareResult cmp = compareTensors(bout, fout);
    if (!cmp.match) {
        std::printf("FUNCTIONAL MISMATCH: %s\n", cmp.str().c_str());
        return 1;
    }
    std::printf("functional check: fused == baseline == reference "
                "(bit-exact)\n");
    std::printf("baseline (Tm,Tn) = (%d,%d), tiles %dx%d; fused "
                "unrolls:", bcfg.tm, bcfg.tn, bcfg.tr, bcfg.tc);
    for (const auto &u : fcfg.unrolls)
        std::printf(" %s(%d,%d)", net.layer(u.layerIdx).name.c_str(),
                    u.tm, u.tn);
    std::printf("\n\n");

    int64_t b_fm = bs.totalDramBytes() - weight_bytes;
    int64_t f_fm = fs.totalDramBytes() - weight_bytes;

    Table t({"metric", "Fused-Layer", "Baseline", "paper F", "paper B"});
    t.addRow({"MB transferred/input (fmaps)", fmtF(toMiB(f_fm), 2),
              fmtF(toMiB(b_fm), 2), "3.64", "77.14"});
    t.addRow({"Cycles x10^3",
              fmtF(static_cast<double>(fs.makespanCycles) / 1e3, 0),
              fmtF(static_cast<double>(bs.computeCycles) / 1e3, 0),
              "11,665", "10,951"});
    t.addRow({"BRAMs", fmtI(fs.bram), fmtI(bs.bram), "2,509", "2,085"});
    t.addRow({"DSP48E1", fmtI(fs.dsp), fmtI(bs.dsp), "2,987", "2,880"});
    t.print();

    double reduction = 100.0 * (1.0 - static_cast<double>(f_fm) /
                                          static_cast<double>(b_fm));
    std::printf("\nDRAM transfer reduction: %.1f%% (paper: 95%%)\n",
                reduction);
    std::printf("cycle overhead of fusion: %+.1f%% (paper: +6.5%%)\n",
                100.0 * (static_cast<double>(fs.makespanCycles) /
                             static_cast<double>(bs.computeCycles) -
                         1.0));
    std::printf("BRAM overhead of fusion: %+.1f%% (paper: +20%%)\n",
                100.0 * (static_cast<double>(fs.bram) /
                             static_cast<double>(bs.bram) -
                         1.0));

    if (!metrics_path.empty()) {
        MetricsReport rep("table2_vgg");
        rep.addRun("baseline", bs, breg);
        rep.addRun("fused", fs, freg);
        if (rep.writeFile(metrics_path))
            std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
        if (writeFusedTraceFile(trace_path, "table2_vgg",
                                fused.schedule(), fused.stageNames(),
                                &freg, nullptr, nullptr,
                                accelStatsArgs(fs)))
            std::printf("wrote trace to %s\n", trace_path.c_str());
    }
    return 0;
}
