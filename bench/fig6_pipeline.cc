/**
 * @file
 * Experiment E7 — Figure 6: pipelining of the fused-layer accelerator.
 * Pyramid p+1's Load overlaps pyramid p's compute stages; the schedule
 * below reproduces the staircase of the paper's timing diagram, and the
 * utilization table quantifies how well the balanced unrolls keep every
 * stage busy.
 */

#include <cstdio>

#include "accel/fused_accel.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "nn/zoo.hh"
#include "sim/pipeline.hh"

using namespace flcnn;

int
main()
{
    std::printf("== Figure 6: fused-layer pipeline schedule ==\n\n");

    // A shrunk two-conv+pool fusion keeps the Gantt chart readable;
    // stage structure (Load, conv, conv, pool, store) mirrors the
    // paper's diagram.
    Network net("demo", Shape{3, 22, 22});
    net.addConvBlock("conv1", 8, 3, 1, 1);
    net.addConvBlock("conv2", 8, 3, 1, 1);
    net.addMaxPool("pool1", 2, 2);
    const int last = net.numLayers() - 1;

    Rng wrng(301);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(302);
    input.fillRandom(irng);

    FusedPipelineConfig fcfg = balanceFusedPipeline(net, 0, last, 200);
    FusedAccelerator accel(net, weights, 0, last, fcfg);
    accel.run(input);
    const PipelineSchedule &s = accel.schedule();

    std::vector<std::string> names{"Load"};
    for (int li = 0; li <= last; li++)
        names.push_back(net.layer(li).name);
    names.push_back("Store");

    std::printf("first pyramids (digits = pyramid index mod 10):\n\n");
    if (s.slotsKept())
        std::printf("%s\n", s.gantt(names).c_str());

    Table t({"stage", "busy cycles", "utilization"});
    for (int st = 0; st < s.numStages(); st++) {
        t.addRow({names[static_cast<size_t>(st)],
                  formatCount(s.stageBusy(st)),
                  fmtF(100.0 * s.stageUtilization(st), 1) + "%"});
    }
    t.print();
    std::printf("\nmakespan: %s cycles over %lld pyramids\n",
                formatCount(s.makespan()).c_str(),
                static_cast<long long>(s.numPyramids()));

    // The full-scale VGG-5 schedule (no Gantt; utilization only).
    std::printf("\n== VGG-E five-conv fusion, full scale ==\n");
    Network vgg = vggEPrefix(5);
    const int vlast = vgg.numLayers() - 1;
    Rng vw(303);
    NetworkWeights vweights(vgg, vw);
    Tensor vin(vgg.inputShape());
    Rng vi(304);
    vin.fillRandom(vi);
    FusedPipelineConfig vcfg = balanceFusedPipeline(vgg, 0, vlast, 2987);
    FusedAccelerator vaccel(vgg, vweights, 0, vlast, vcfg);
    vaccel.run(vin);
    const PipelineSchedule &vs = vaccel.schedule();

    Table vt({"stage", "busy kcycles", "utilization"});
    std::vector<std::string> vnames{"Load"};
    for (int li = 0; li <= vlast; li++)
        vnames.push_back(vgg.layer(li).name);
    vnames.push_back("Store");
    for (int st = 0; st < vs.numStages(); st++) {
        if (vs.stageBusy(st) == 0)
            continue;
        vt.addRow({vnames[static_cast<size_t>(st)],
                   fmtF(static_cast<double>(vs.stageBusy(st)) / 1e3, 0),
                   fmtF(100.0 * vs.stageUtilization(st), 1) + "%"});
    }
    vt.print();
    std::printf("\nmakespan: %.0f kcycles (paper's fused design: "
                "11,665 kcycles)\n",
                static_cast<double>(vs.makespan()) / 1e3);
    return 0;
}
