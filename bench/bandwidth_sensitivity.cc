/**
 * @file
 * Extension experiment — bandwidth sensitivity.
 *
 * The paper's footnote 4 converts transfer volumes to bandwidth at a
 * target frame rate. The flip side: at a *fixed* DRAM bandwidth, the
 * baseline's makespan degrades as soon as the channel cannot hide its
 * 20x larger traffic under compute, while the fused design stays
 * compute-bound down to very narrow channels. Swept here on a shrunk
 * VGG-style stack (full functional execution at each point).
 */

#include <cstdio>

#include "accel/baseline_accel.hh"
#include "accel/fused_accel.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

using namespace flcnn;

int
main()
{
    std::printf("== Extension: makespan vs DRAM bandwidth (shrunk "
                "VGG-style stack) ==\n\n");
    Network net("bw", Shape{3, 56, 56});
    net.addConvBlock("c1", 16, 3, 1, 1);
    net.addConvBlock("c2", 16, 3, 1, 1);
    net.addMaxPool("p1", 2, 2);
    net.addConvBlock("c3", 32, 3, 1, 1);
    const int last = net.numLayers() - 1;

    Rng wrng(71);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(72);
    input.fillRandom(irng);

    BaselineConfig bcfg = optimizeBaseline(net, 640);
    bcfg.tr = bcfg.tc = 8;
    FusedPipelineConfig fcfg = balanceFusedPipeline(net, 0, last, 700);

    Table t({"DRAM B/cycle", "baseline makespan", "fused makespan",
             "fused/baseline"});
    for (double bpc : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        DramModel dram(bpc, 30);
        BaselineAccelerator base(net, weights, bcfg, dram);
        AccelStats bs;
        Tensor bout = base.run(input, &bs);
        FusedAccelerator fused(net, weights, 0, last, fcfg, dram);
        AccelStats fs;
        Tensor fout = fused.run(input, &fs);
        if (!tensorsEqual(bout, fout)) {
            std::printf("FUNCTIONAL MISMATCH at %.1f B/cycle\n", bpc);
            return 1;
        }
        t.addRow({fmtF(bpc, 1), formatCount(bs.makespanCycles),
                  formatCount(fs.makespanCycles),
                  fmtF(static_cast<double>(fs.makespanCycles) /
                           static_cast<double>(bs.makespanCycles),
                       2)});
    }
    t.print();
    std::printf("\nthe fused design's makespan is nearly "
                "bandwidth-invariant (its traffic is the\nimage in and "
                "the result out); the baseline becomes memory-bound as "
                "the channel\nnarrows — the regime the paper's 95%% "
                "traffic reduction targets.\n");
    return 0;
}
