/**
 * @file
 * Experiment E9 — ablations of the design choices DESIGN.md calls out:
 *
 *  1. (Tm, Tn) unroll sweep for the baseline engine (Figure 5 /
 *     Listing 1 cycle formula) at a fixed DSP budget: why the joint
 *     optimum is chosen.
 *  2. Tip-size ablation for the fused design: wider pyramid tips trade
 *     recompute-model arithmetic against buffer capacity (Section
 *     III-C's knob), while the reuse model is tip-invariant in ops.
 *  3. Baseline spatial tile size vs. halo re-read traffic.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/units.hh"
#include "fusion/plan.hh"
#include "model/baseline.hh"
#include "model/explorer.hh"
#include "model/recompute.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"

using namespace flcnn;

int
main()
{
    Network net = vggEPrefix(5);

    std::printf("== Ablation 1: baseline (Tm, Tn) under a 2880-DSP "
                "budget (VGG-5) ==\n");
    Table t1({"Tm", "Tn", "DSP", "total kcycles"});
    for (auto [tm, tn] : {std::pair{576, 1}, {288, 2}, {192, 3},
                          {144, 4}, {96, 6}, {72, 8}, {64, 9},
                          {32, 18}, {18, 32}, {9, 64}, {1, 576}}) {
        int64_t cycles = 0;
        for (int i : net.convLayers()) {
            const LayerSpec &s = net.layer(i);
            const Shape &in = net.inShape(i);
            const Shape &out = net.outShape(i);
            cycles += s.groups * convCycles(s.outChannels / s.groups,
                                            in.c / s.groups, out.h,
                                            out.w, s.kernel, tm, tn);
        }
        t1.addRow({fmtI(tm), fmtI(tn), fmtI(tm * tn * 5),
                   fmtF(static_cast<double>(cycles) / 1e3, 0)});
    }
    t1.print();
    BaselineConfig best = optimizeBaseline(net, 2880);
    std::printf("joint optimum: (Tm, Tn) = (%d, %d) -> %lld kcycles "
                "(paper baseline: 10,951)\n\n",
                best.tm, best.tn,
                static_cast<long long>(
                    evaluateBaseline(net, best).totalCycles / 1000));

    std::printf("== Ablation 2: pyramid tip size (VGG-5 fusion) ==\n");
    Table t2({"tip", "pyramids", "reuse buf KB", "working buf KB",
              "recompute-model extra ops"});
    int64_t ref_ops =
        rangeOpCount(net, 0, net.numLayers() - 1).multAdds();
    for (int tip : {1, 2, 4, 7, 14, 28, 56}) {
        TilePlan plan(net, 0, net.numLayers() - 1, tip, tip);
        OpCount rec = recomputeOpsForPlan(net, plan);
        t2.addRow({fmtI(tip), fmtI(plan.numPyramids()),
                   fmtF(toKiB(plan.reuseBufferBytes()), 0),
                   fmtF(toKiB(plan.workingBufferBytes()), 0),
                   formatScaled(static_cast<double>(rec.multAdds() -
                                                    ref_ops))});
    }
    t2.print();
    std::printf("(the reuse model's arithmetic is tip-invariant: always "
                "%s mult-adds)\n\n",
                formatScaled(static_cast<double>(ref_ops)).c_str());

    std::printf("== Ablation 3: baseline spatial tile vs. halo "
                "traffic (VGG-5, Tm=64, Tn=9) ==\n");
    Table t3({"tile", "fmap MB/input", "vs whole-plane"});
    BaselineConfig cfg{64, 9, 0, 0};
    int64_t weights =
        net.weightBytesInRange(0, net.numLayers() - 1);
    int64_t whole = evaluateBaseline(net, cfg).totalBytes - weights;
    for (int tile : {0, 112, 56, 28, 16, 8, 4}) {
        cfg.tr = cfg.tc = tile;
        int64_t bytes = evaluateBaseline(net, cfg).totalBytes - weights;
        t3.addRow({tile == 0 ? "whole" : fmtI(tile),
                   fmtF(toMiB(bytes), 1),
                   fmtF(static_cast<double>(bytes) /
                            static_cast<double>(whole),
                        2) +
                       "x"});
    }
    t3.print();
    std::printf("(the paper's 77.14 MB baseline corresponds to "
                "buffer-sized ~16x16 tiles)\n");

    std::printf("\n== Ablation 4: why fusion targets the *early* "
                "layers (VGG-8 prefix) ==\n");
    // Price on-chip weight residency into the storage axis: deep
    // stages carry MBs of weights, so the best transfer-per-storage
    // designs fuse the feature-map-heavy early stages.
    Network net8 = vggEPrefix(8);
    ExploreOptions plain;
    plain.exactStorage = false;
    ExploreOptions weighted = plain;
    weighted.includeWeightStorage = true;
    auto pa = exploreFusionSpace(net8, plain);
    auto pb = exploreFusionSpace(net8, weighted);
    Table t4({"model", "full-fusion storage", "front size",
              "best transfer <=1MB storage"});
    auto summarize = [&](const char *label, ExplorationResult &r,
                         Table &t) {
        const DesignPoint *pick = r.bestUnderStorage(1024 * 1024);
        t.addRow({label,
                  formatBytes(r.points.front().storageBytes),
                  fmtI(static_cast<int64_t>(r.front.size())),
                  pick ? formatBytes(pick->transferBytes)
                       : std::string("-")});
    };
    summarize("reuse buffers only", pa, t4);
    summarize("+ on-chip weights", pb, t4);
    t4.print();
    std::printf("(with weights priced in, a 1 MB budget favors fusing "
                "early stages and\nleaving the weight-heavy deep "
                "stages layer-by-layer — the paper's Section II-B\n"
                "motivation, quantified)\n");
    return 0;
}
