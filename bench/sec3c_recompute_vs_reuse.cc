/**
 * @file
 * Experiment E2 — Section III-C: recomputing vs. storing intermediate
 * values.
 *
 * Paper reference points:
 *  - AlexNet, first two conv layers fused: recompute costs ~678 million
 *    extra multiplications and additions; reuse costs 55.86 KB.
 *  - VGGNet-E, all conv/pool stages fused: recompute costs ~470 billion
 *    extra operations (~9.6x increase); reuse costs ~1.4 MB.
 *
 * We report both the paper's pairwise-overlap estimate and the exact
 * cost of evaluating independent 1x1-tip pyramids (what a literal
 * recompute implementation — our RecomputeExecutor — performs).
 */

#include <cstdio>

#include "common/table.hh"
#include "common/units.hh"
#include "fusion/plan.hh"
#include "model/recompute.hh"
#include "model/storage.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"

using namespace flcnn;

namespace {

void
report(const char *name, const Network &net, int first, int last,
       const char *paper_extra, const char *paper_storage)
{
    int64_t base = rangeOpCount(net, first, last).multAdds();
    int64_t pairwise = pairwiseRecomputeExtraMultAdds(net, first, last);
    int64_t exact = recomputeExtraMultAdds(net, first, last);
    int64_t storage = reuseStorageBytesExact(net, first, last);

    std::printf("-- %s --\n", name);
    Table t({"quantity", "ours", "paper"});
    t.addRow({"baseline mult-adds", formatScaled((double)base), "-"});
    t.addRow({"recompute extra (pairwise model)",
              formatScaled((double)pairwise), paper_extra});
    t.addRow({"recompute extra (exact, 1x1-tip pyramids)",
              formatScaled((double)exact), "-"});
    t.addRow({"overall increase (pairwise)",
              fmtF(1.0 + (double)pairwise / (double)base, 2) + "x",
              "-"});
    t.addRow({"reuse storage instead", formatBytes(storage),
              paper_storage});
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("== Section III-C: recompute vs. reuse ==\n\n");

    Network alex = alexnetFusedPrefix();
    report("AlexNet, conv1+pool1+conv2 fused", alex, 0,
           alex.numLayers() - 1, "678 M", "55.86 KB");

    Network vgg5 = vggEPrefix(5);
    report("VGGNet-E, first five conv stages fused", vgg5, 0,
           vgg5.numLayers() - 1, "-", "362 KB");

    Network vgg = vggE();
    int last = vgg.stages().back().last;
    int64_t base = rangeOpCount(vgg, 0, last).multAdds();
    int64_t pairwise = pairwiseRecomputeExtraMultAdds(vgg, 0, last);
    int64_t storage = reuseStorageBytesClosedForm(vgg, 0, last);
    std::printf("-- VGGNet-E, all %zu conv/pool stages fused --\n",
                vgg.stages().size());
    Table t({"quantity", "ours", "paper"});
    t.addRow({"baseline mult-adds", formatScaled((double)base), "-"});
    t.addRow({"recompute extra (pairwise model)",
              formatScaled((double)pairwise), "470 B"});
    t.addRow({"overall increase",
              fmtF(1.0 + (double)pairwise / (double)base, 2) + "x",
              "9.6x"});
    t.addRow({"reuse storage instead", formatBytes(storage), "1.4 MB"});
    t.print();

    std::printf(
        "\nconclusion (paper's): for vision CNNs the recompute model "
        "costs billions of\nextra operations where the reuse model "
        "costs kilobytes; the rest of the\nsystem therefore uses the "
        "reuse strategy.\n");
    return 0;
}
