/**
 * @file
 * Extension experiment — energy consequences of layer fusion.
 *
 * The paper motivates fusion by the bandwidth *and energy* cost of
 * off-chip transfers (Section II-B). This bench quantifies it with a
 * first-order Horowitz-style model: DRAM bytes cost ~130x more than
 * on-chip bytes, so removing 95% of the DRAM traffic removes most of
 * the memory energy while the reuse model's arithmetic (and hence
 * compute energy) is unchanged.
 */

#include <cstdio>

#include "common/table.hh"
#include "common/units.hh"
#include "model/baseline.hh"
#include "model/energy.hh"
#include "model/storage.hh"
#include "model/transfer.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"

using namespace flcnn;

namespace {

void
report(const char *name, const Network &net, int dsp_budget)
{
    const int last = net.stages().back().last;
    OpCount ops = rangeOpCount(net, 0, last);

    // Baseline: tiled accelerator traffic; every DRAM byte also passes
    // through an on-chip buffer once.
    BaselineConfig bcfg = optimizeBaseline(net, dsp_budget);
    bcfg.tr = bcfg.tc = 16;
    BaselineCost base = evaluateBaseline(net, bcfg);
    EnergyBreakdown be =
        estimateEnergy(base.totalBytes, base.totalBytes, ops);

    // Fused: endpoint planes over DRAM; intermediates through SRAM
    // (each intermediate plane written and read once on chip).
    int64_t fused_dram = net.inShape(0).bytes() +
                         net.outShape(last).bytes() +
                         net.weightBytesInRange(0, last);
    int64_t onchip = fused_dram;
    for (int i = 0; i < last; i++)
        onchip += 2 * net.outShape(i).bytes();
    EnergyBreakdown fe = estimateEnergy(fused_dram, onchip, ops);

    std::printf("-- %s --\n", name);
    Table t({"component", "fused mJ", "baseline mJ"});
    t.addRow({"DRAM", fmtF(fe.dramPj * 1e-9, 2),
              fmtF(be.dramPj * 1e-9, 2)});
    t.addRow({"on-chip SRAM", fmtF(fe.sramPj * 1e-9, 2),
              fmtF(be.sramPj * 1e-9, 2)});
    t.addRow({"arithmetic", fmtF(fe.computePj * 1e-9, 2),
              fmtF(be.computePj * 1e-9, 2)});
    t.addRow({"total", fmtF(fe.totalMj(), 2), fmtF(be.totalMj(), 2)});
    t.print();
    std::printf("memory-energy reduction: %.1fx; total: %.2fx\n\n",
                be.dramPj / fe.dramPj, be.total() / fe.total());
}

} // namespace

int
main()
{
    std::printf("== Extension: per-image energy, fused vs baseline "
                "(first-order model) ==\n\n");
    report("VGGNet-E first five convs", vggEPrefix(5), 2880);
    report("AlexNet first two convs", alexnetFusedPrefix(), 2240);
    report("GoogLeNet stem", googlenetStem(), 2880);
    std::printf("coefficients: DRAM 162.5 pJ/B, SRAM 1.25 pJ/B, MAC "
                "2.3 pJ (45nm-class;\nratios are the result, not the "
                "absolute joules — see model/energy.hh)\n");
    return 0;
}
