/**
 * @file
 * Experiment E8 — Section VI-C: "our experiments with a C++
 * implementation of layer fusion for the first two layers of AlexNet
 * achieves more than 2x speedup as compared to the layer-by-layer
 * approach running on a desktop CPU."
 *
 * The layer-by-layer path materializes every intermediate feature map
 * in memory; the fused (line-buffered) path keeps intermediates inside
 * a few rows of cache-resident buffers. Google-benchmark timings at
 * reduced spatial scales are followed by a single full-scale (227x227)
 * comparison.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "common/argparse.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "fusion/line_buffer_executor.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

using namespace flcnn;

namespace {

/** AlexNet's first two conv layers at a reduced input scale (the
 *  conv/pool/pad parameters are the real ones). */
Network
alexTwo(int hw)
{
    Network net("alex2", Shape{3, hw, hw});
    net.add(LayerSpec::conv("conv1", 96, 11, 4));
    net.add(LayerSpec::relu("relu1"));
    net.addMaxPool("pool1", 3, 2);
    net.add(LayerSpec::padding("conv2_pad", 2));
    net.add(LayerSpec::conv("conv2", 256, 5, 1, 2));
    net.add(LayerSpec::relu("relu2"));
    return net;
}

struct Setup
{
    Network net;
    NetworkWeights weights;
    Tensor input;

    explicit Setup(int hw) : net(alexTwo(hw)), weights(net, rngA()),
                             input(net.inputShape())
    {
        Rng r(99);
        input.fillRandom(r);
    }

    static Rng &
    rngA()
    {
        static Rng r(42);
        return r;
    }
};

void
BM_LayerByLayer(benchmark::State &state)
{
    Setup s(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        Tensor out = runRange(s.net, s.weights, s.input, 0,
                              s.net.numLayers() - 1);
        benchmark::DoNotOptimize(out.data());
    }
}

void
BM_FusedLineBuffer(benchmark::State &state)
{
    Setup s(static_cast<int>(state.range(0)));
    LineBufferExecutor exec(s.net, s.weights, 0, s.net.numLayers() - 1,
                            static_cast<int>(state.range(1)));
    for (auto _ : state) {
        Tensor out = exec.run(s.input);
        benchmark::DoNotOptimize(out.data());
    }
}

BENCHMARK(BM_LayerByLayer)->Arg(59)->Arg(115)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FusedLineBuffer)
    ->Args({59, 1})
    ->Args({59, 8})
    ->Args({115, 1})
    ->Args({115, 8})
    ->Unit(benchmark::kMillisecond);

double
timeOnce(const std::function<Tensor()> &fn, Tensor *out)
{
    auto t0 = std::chrono::steady_clock::now();
    *out = fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** The VGG-E first-five-conv fused pyramid (the paper's Table II
 *  configuration) at a configurable spatial scale. */
Network
vggFive(int hw)
{
    Network net("vggE-first5", Shape{3, hw, hw});
    net.addConvBlock("conv1_1", 64, 3, 1, 1);
    net.addConvBlock("conv1_2", 64, 3, 1, 1);
    net.addMaxPool("pool1", 2, 2);
    net.addConvBlock("conv2_1", 128, 3, 1, 1);
    net.addConvBlock("conv2_2", 128, 3, 1, 1);
    net.addMaxPool("pool2", 2, 2);
    net.addConvBlock("conv3_1", 256, 3, 1, 1);
    return net;
}

/** Sweep thread counts over the fused VGG-E pyramid and the
 *  layer-by-layer reference; returns false on any output mismatch. */
bool
vggThreadSweep(int scale, int configured_threads)
{
    std::printf("\n== Threaded execution: VGG-E first five convolution "
                "layers, %dx%d input ==\n",
                scale, scale);
    Network net = vggFive(scale);
    Rng wrng(5);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(6);
    input.fillRandom(irng);
    const int last = net.numLayers() - 1;

    std::vector<int> counts{1, 2, 4, 8};
    if (std::find(counts.begin(), counts.end(), configured_threads) ==
        counts.end())
        counts.push_back(configured_threads);

    Tensor ref;
    double ref_1t = 0.0, fused_1t = 0.0;
    bool match = true;
    Table t({"executor", "threads", "seconds", "speedup vs 1 thread",
             "max abs diff"});
    for (int threads : counts) {
        ThreadPool::setGlobalThreads(threads);

        Tensor a;
        double s_ref = timeOnce(
            [&] { return runRange(net, weights, input, 0, last); }, &a);
        if (threads == 1) {
            ref = a;
            ref_1t = s_ref;
        }
        CompareResult ra = compareTensors(ref, a);
        match = match && ra.match;
        t.addRow({"layer-by-layer", std::to_string(threads),
                  fmtF(s_ref, 2), fmtF(ref_1t / s_ref, 2) + "x",
                  fmtF(ra.maxAbsDiff, 1)});

        LineBufferExecutor exec(net, weights, 0, last, 8);
        Tensor b;
        double s_fused =
            timeOnce([&] { return exec.run(input); }, &b);
        if (threads == 1)
            fused_1t = s_fused;
        CompareResult rb = compareTensors(ref, b);
        match = match && rb.match;
        t.addRow({"fused line-buffer", std::to_string(threads),
                  fmtF(s_fused, 2), fmtF(fused_1t / s_fused, 2) + "x",
                  fmtF(rb.maxAbsDiff, 1)});
    }
    t.print();
    std::printf("outputs %s across all thread counts "
                "(static-partition pool, canonical summation order)\n",
                match ? "bit-identical" : "MISMATCHED");
    ThreadPool::setGlobalThreads(configured_threads);
    return match;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our knobs before google-benchmark parses the rest.
    int threads = 0;      // 0 = FLCNN_THREADS or hardware concurrency
    int vgg_scale = 112;  // 224 reproduces the paper's full input
    int keep = 1;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "--threads") == 0) {
            threads = parseIntArgI("--threads",
                                   argValue(argc, argv, &a), 1, 1 << 20);
        } else if (std::strcmp(argv[a], "--vgg-scale") == 0) {
            vgg_scale = parseIntArgI(
                "--vgg-scale", argValue(argc, argv, &a), 8, 1 << 14);
        } else {
            argv[keep++] = argv[a];
        }
    }
    argc = keep;
    ThreadPool::setGlobalThreads(threads);
    const int active = ThreadPool::global().numThreads();

    std::printf("== Section VI-C: CPU layer-fusion speedup, AlexNet "
                "first two conv layers ==\n");
    std::printf("threads: %d (override with --threads N or "
                "FLCNN_THREADS)\n\n",
                active);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Full-scale single-shot comparison (227 x 227 input), sweeping
    // the row-block size that amortizes per-row weight re-streaming.
    Setup s(227);
    Tensor a, b;
    double best_ref = 1e30;
    for (int rep = 0; rep < 3; rep++) {
        best_ref = std::min(
            best_ref, timeOnce(
                          [&] {
                              return runRange(s.net, s.weights, s.input,
                                              0, s.net.numLayers() - 1);
                          },
                          &a));
    }
    int64_t planes = 0;
    for (int i = 0; i + 1 < s.net.numLayers(); i++)
        planes += s.net.outShape(i).bytes();

    std::printf("\nfull scale (227x227), best of 3:\n");
    Table t({"executor", "seconds", "speedup", "working set"});
    t.addRow({"layer-by-layer", fmtF(best_ref, 2), "1.00x",
              std::to_string(planes / 1024) + " KB of planes"});
    bool match = true;
    for (int block : {1, 4, 8, 16}) {
        LineBufferExecutor exec(s.net, s.weights, 0,
                                s.net.numLayers() - 1, block);
        double best_fused = 1e30;
        for (int rep = 0; rep < 3; rep++) {
            best_fused = std::min(
                best_fused,
                timeOnce([&] { return exec.run(s.input); }, &b));
        }
        match = match && tensorsEqual(a, b);
        t.addRow({"fused, row block " + std::to_string(block),
                  fmtF(best_fused, 2),
                  fmtF(best_ref / best_fused, 2) + "x",
                  std::to_string(exec.bufferBytes() / 1024) +
                      " KB of line buffers"});
    }
    t.print();
    std::printf("\npaper claims >2x on a 2016 desktop; outputs %s.\n"
                "See EXPERIMENTS.md (E8): scalar convolution is "
                "compute-bound, so on a large-\nLLC host the win is "
                "bounded; row blocking removes the fused schedule's\n"
                "weight-restreaming penalty.\n",
                match ? "bit-identical" : "MISMATCHED");

    bool vgg_match = vggThreadSweep(vgg_scale, active);
    return match && vgg_match ? 0 : 1;
}
