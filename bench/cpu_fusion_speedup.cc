/**
 * @file
 * Experiment E8 — Section VI-C: "our experiments with a C++
 * implementation of layer fusion for the first two layers of AlexNet
 * achieves more than 2x speedup as compared to the layer-by-layer
 * approach running on a desktop CPU."
 *
 * The layer-by-layer path materializes every intermediate feature map
 * in memory; the fused (line-buffered) path keeps intermediates inside
 * a few rows of cache-resident buffers. Google-benchmark timings at
 * reduced spatial scales are followed by a single full-scale (227x227)
 * comparison.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <cstdio>

#include "common/table.hh"
#include "fusion/line_buffer_executor.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "tensor/compare.hh"

using namespace flcnn;

namespace {

/** AlexNet's first two conv layers at a reduced input scale (the
 *  conv/pool/pad parameters are the real ones). */
Network
alexTwo(int hw)
{
    Network net("alex2", Shape{3, hw, hw});
    net.add(LayerSpec::conv("conv1", 96, 11, 4));
    net.add(LayerSpec::relu("relu1"));
    net.addMaxPool("pool1", 3, 2);
    net.add(LayerSpec::padding("conv2_pad", 2));
    net.add(LayerSpec::conv("conv2", 256, 5, 1, 2));
    net.add(LayerSpec::relu("relu2"));
    return net;
}

struct Setup
{
    Network net;
    NetworkWeights weights;
    Tensor input;

    explicit Setup(int hw) : net(alexTwo(hw)), weights(net, rngA()),
                             input(net.inputShape())
    {
        Rng r(99);
        input.fillRandom(r);
    }

    static Rng &
    rngA()
    {
        static Rng r(42);
        return r;
    }
};

void
BM_LayerByLayer(benchmark::State &state)
{
    Setup s(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        Tensor out = runRange(s.net, s.weights, s.input, 0,
                              s.net.numLayers() - 1);
        benchmark::DoNotOptimize(out.data());
    }
}

void
BM_FusedLineBuffer(benchmark::State &state)
{
    Setup s(static_cast<int>(state.range(0)));
    LineBufferExecutor exec(s.net, s.weights, 0, s.net.numLayers() - 1,
                            static_cast<int>(state.range(1)));
    for (auto _ : state) {
        Tensor out = exec.run(s.input);
        benchmark::DoNotOptimize(out.data());
    }
}

BENCHMARK(BM_LayerByLayer)->Arg(59)->Arg(115)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FusedLineBuffer)
    ->Args({59, 1})
    ->Args({59, 8})
    ->Args({115, 1})
    ->Args({115, 8})
    ->Unit(benchmark::kMillisecond);

double
timeOnce(const std::function<Tensor()> &fn, Tensor *out)
{
    auto t0 = std::chrono::steady_clock::now();
    *out = fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("== Section VI-C: CPU layer-fusion speedup, AlexNet "
                "first two conv layers ==\n\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Full-scale single-shot comparison (227 x 227 input), sweeping
    // the row-block size that amortizes per-row weight re-streaming.
    Setup s(227);
    Tensor a, b;
    double best_ref = 1e30;
    for (int rep = 0; rep < 3; rep++) {
        best_ref = std::min(
            best_ref, timeOnce(
                          [&] {
                              return runRange(s.net, s.weights, s.input,
                                              0, s.net.numLayers() - 1);
                          },
                          &a));
    }
    int64_t planes = 0;
    for (int i = 0; i + 1 < s.net.numLayers(); i++)
        planes += s.net.outShape(i).bytes();

    std::printf("\nfull scale (227x227), best of 3:\n");
    Table t({"executor", "seconds", "speedup", "working set"});
    t.addRow({"layer-by-layer", fmtF(best_ref, 2), "1.00x",
              std::to_string(planes / 1024) + " KB of planes"});
    bool match = true;
    for (int block : {1, 4, 8, 16}) {
        LineBufferExecutor exec(s.net, s.weights, 0,
                                s.net.numLayers() - 1, block);
        double best_fused = 1e30;
        for (int rep = 0; rep < 3; rep++) {
            best_fused = std::min(
                best_fused,
                timeOnce([&] { return exec.run(s.input); }, &b));
        }
        match = match && tensorsEqual(a, b);
        t.addRow({"fused, row block " + std::to_string(block),
                  fmtF(best_fused, 2),
                  fmtF(best_ref / best_fused, 2) + "x",
                  std::to_string(exec.bufferBytes() / 1024) +
                      " KB of line buffers"});
    }
    t.print();
    std::printf("\npaper claims >2x on a 2016 desktop; outputs %s.\n"
                "See EXPERIMENTS.md (E8): scalar convolution is "
                "compute-bound, so on a large-\nLLC host the win is "
                "bounded; row blocking removes the fused schedule's\n"
                "weight-restreaming penalty.\n",
                match ? "bit-identical" : "MISMATCHED");
    return match ? 0 : 1;
}
