/**
 * @file
 * Experiments E3/E4 — Figure 7: the storage-vs-transfer trade-off space
 * of all fusion partitions for AlexNet (128 points) and the VGGNet-E
 * five-conv prefix (64 points), with the Pareto front and the paper's
 * named points:
 *
 *   A: layer-by-layer, 0 storage, ~86 MB transferred;
 *   B: ~118 KB storage, ~25 MB transferred;
 *   C: full fusion, ~362 KB storage, 3.6 MB transferred (24x less).
 */

#include <cstdio>

#include "common/table.hh"
#include "common/units.hh"
#include "model/explorer.hh"
#include "model/transfer.hh"
#include "nn/zoo.hh"

using namespace flcnn;

namespace {

void
sweep(const Network &net, const char *title)
{
    std::printf("== Figure 7: %s ==\n", title);
    auto res = exploreFusionSpace(net);
    std::printf("%zu partitions evaluated, %zu Pareto-optimal\n\n",
                res.points.size(), res.front.size());

    Table t({"partition", "storage KB", "transfer MB"});
    for (const auto &p : res.front) {
        t.addRow({partitionStr(p.partition),
                  fmtF(toKiB(p.storageBytes), 1),
                  fmtF(toMiB(p.transferBytes), 2)});
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    sweep(alexnet(), "(a) AlexNet, 8 stages, 128 partitions");
    Network vgg = vggEPrefix(5);
    sweep(vgg, "(b) VGGNet-E first 5 convs + 2 pools, 64 partitions");

    // The paper's named points on the VGG plot.
    auto res = exploreFusionSpace(vgg);
    int64_t a_transfer = layerByLayerTransferBytes(vgg);
    const DesignPoint *b = res.bestUnderStorage(120 * 1024);
    const DesignPoint &c = res.minTransfer();

    std::printf("named points (paper values in parentheses):\n");
    std::printf("  A: storage 0, transfer %.1f MB   (0, 86 MB)\n",
                toMiB(a_transfer));
    if (b) {
        std::printf("  B: storage %.0f KB, transfer %.1f MB   "
                    "(118 KB, 25 MB)  partition %s\n",
                    toKiB(b->storageBytes), toMiB(b->transferBytes),
                    partitionStr(b->partition).c_str());
    }
    std::printf("  C: storage %.0f KB, transfer %.2f MB   "
                "(362 KB, 3.6 MB)  partition %s\n",
                toKiB(c.storageBytes), toMiB(c.transferBytes),
                partitionStr(c.partition).c_str());
    std::printf("  A->C DRAM traffic reduction: %.1fx (paper: 24x)\n",
                static_cast<double>(a_transfer) /
                    static_cast<double>(c.transferBytes));
    std::printf("\nnote: our front also contains conv+pool merges at "
                "zero storage cost\n(e.g. the first front row above); "
                "the paper itself observes pooling fusion\nis free and "
                "plots A as the strictly layer-by-layer extreme.\n");
    return 0;
}
