/**
 * @file
 * Experiment E5 — Table I: fused-layer accelerator for the first two
 * convolutional layers of AlexNet (conv1 + relu + pool1 + pad + conv2 +
 * relu) vs. a baseline derived from Zhang et al. [19].
 *
 * Paper row values: KB transferred/input 688 vs 962 (a 28% saving),
 * kilocycles 422 vs 621, BRAM 1124 vs 1046, DSP 2401 vs 2240. The
 * paper's baseline uses [19]'s joint (Tm, Tn) optimization re-run for
 * just these two layers at the same resource budget; transfer counts
 * feature maps only (the early layers' weights stay resident on chip).
 *
 * Both accelerators here are *executed* on a synthetic image and
 * verified bit-identical before their measured statistics are printed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "accel/baseline_accel.hh"
#include "accel/fused_accel.hh"
#include "common/argparse.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "nn/reference.hh"
#include "nn/zoo.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "obs/timeline.hh"
#include "tensor/compare.hh"

using namespace flcnn;

int
main(int argc, char **argv)
{
    std::string metrics_path, trace_path;
    for (int a = 1; a < argc; a++) {
        if (std::strcmp(argv[a], "--metrics-json") == 0)
            metrics_path = argValue(argc, argv, &a);
        else if (std::strcmp(argv[a], "--trace-json") == 0)
            trace_path = argValue(argc, argv, &a);
        else
            fatal("unknown argument '%s'", argv[a]);
    }
    const bool want_obs = !metrics_path.empty() || !trace_path.empty();

    std::printf("== Table I: AlexNet first two conv layers, fused vs "
                "baseline ==\n\n");
    Network net = alexnetFusedPrefix();
    const int last = net.numLayers() - 1;

    Rng wrng(101);
    NetworkWeights weights(net, wrng);
    Tensor input(net.inputShape());
    Rng irng(102);
    input.fillRandom(irng);
    int64_t weight_bytes = net.weightBytesInRange(0, last);

    // Baseline: [19]'s methodology at the paper's 2240-DSP budget,
    // with 16x16 output tiles (buffer-sized, as in Table II).
    BaselineConfig bcfg = optimizeBaseline(net, 2240);
    bcfg.tr = bcfg.tc = 16;
    BaselineAccelerator baseline(net, weights, bcfg);
    MetricsRegistry breg;
    if (want_obs)
        baseline.setMetrics(&breg);
    AccelStats bs;
    Tensor bout = baseline.run(input, &bs);

    // Fused: pipeline balanced at the paper's 2401-DSP budget.
    FusedPipelineConfig fcfg = balanceFusedPipeline(net, 0, last, 2401);
    FusedAccelerator fused(net, weights, 0, last, fcfg);
    MetricsRegistry freg;
    if (want_obs)
        fused.setMetrics(&freg);
    AccelStats fs;
    Tensor fout = fused.run(input, &fs);

    CompareResult cmp = compareTensors(bout, fout);
    if (!cmp.match) {
        std::printf("FUNCTIONAL MISMATCH: %s\n", cmp.str().c_str());
        return 1;
    }
    std::printf("functional check: fused == baseline == reference "
                "(bit-exact)\n");
    std::printf("baseline (Tm,Tn) = (%d,%d); fused unrolls:", bcfg.tm,
                bcfg.tn);
    for (const auto &u : fcfg.unrolls)
        std::printf(" %s(%d,%d)", net.layer(u.layerIdx).name.c_str(),
                    u.tm, u.tn);
    std::printf("\n\n");

    int64_t b_fm = bs.totalDramBytes() - weight_bytes;
    int64_t f_fm = fs.totalDramBytes() - weight_bytes;

    Table t({"metric", "Fused-Layer", "Baseline", "paper F", "paper B"});
    t.addRow({"KB transferred/input (fmaps)", fmtF(toKiB(f_fm), 0),
              fmtF(toKiB(b_fm), 0), "688", "962"});
    t.addRow({"Cycles x10^3",
              fmtF(static_cast<double>(fs.makespanCycles) / 1e3, 0),
              fmtF(static_cast<double>(bs.computeCycles) / 1e3, 0),
              "422", "621"});
    t.addRow({"BRAMs", fmtI(fs.bram), fmtI(bs.bram), "1,124", "1,046"});
    t.addRow({"DSP48E1", fmtI(fs.dsp), fmtI(bs.dsp), "2,401", "2,240"});
    t.addRow({"LUTs (first-order)", fmtI(fs.lut), fmtI(bs.lut),
              "273,367", "186,251"});
    t.addRow({"FFs (first-order)", fmtI(fs.ff), fmtI(bs.ff),
              "306,990", "205,704"});
    t.print();

    std::printf("\ntransfer ratio fused/baseline: %.2f (paper: "
                "688/962 = 0.72, a 28%% saving)\n",
                static_cast<double>(f_fm) / static_cast<double>(b_fm));
    std::printf("notes: cycle counts are per image; the paper's "
                "absolute cycles derive from\nHLS schedules we model "
                "analytically, so shapes (fused competitive with\n"
                "baseline) matter rather than absolute values — see "
                "EXPERIMENTS.md.\n");

    if (!metrics_path.empty()) {
        MetricsReport rep("table1_alexnet");
        rep.addRun("baseline", bs, breg);
        rep.addRun("fused", fs, freg);
        if (rep.writeFile(metrics_path))
            std::printf("wrote metrics to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
        if (writeFusedTraceFile(trace_path, "table1_alexnet",
                                fused.schedule(), fused.stageNames(),
                                &freg, nullptr, nullptr,
                                accelStatsArgs(fs)))
            std::printf("wrote trace to %s\n", trace_path.c_str());
    }
    return 0;
}
